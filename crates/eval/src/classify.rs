//! Record classification: Cor / InCor / FN / FP.

use std::collections::BTreeSet;
use std::ops::Range;

use serde::{Deserialize, Serialize};

/// Per-page classification counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PageCounts {
    /// Correctly segmented records.
    pub cor: usize,
    /// Incorrectly segmented records.
    pub incor: usize,
    /// Unsegmented records (false negatives).
    pub fneg: usize,
    /// Non-records reported as records (false positives).
    pub fpos: usize,
}

impl PageCounts {
    /// Element-wise sum.
    pub fn add(&self, other: &PageCounts) -> PageCounts {
        PageCounts {
            cor: self.cor + other.cor,
            incor: self.incor + other.incor,
            fneg: self.fneg + other.fneg,
            fpos: self.fpos + other.fpos,
        }
    }

    /// Total true records covered by this page (Cor + InCor + FN).
    pub fn total_records(&self) -> usize {
        self.cor + self.incor + self.fneg
    }
}

/// Maps each extract to its ground-truth record via its byte offset in the
/// list-page source. `offsets[i]` is the source offset of extract `i`;
/// `spans[t]` is the byte range of truth record `t`.
pub fn truth_of_extracts(offsets: &[usize], spans: &[Range<usize>]) -> Vec<Option<usize>> {
    offsets
        .iter()
        .map(|&off| spans.iter().position(|s| s.contains(&off)))
        .collect()
}

/// Classifies a segmentation.
///
/// * `groups[p]` — the extract indices the segmenter put in predicted
///   record `p` (empty groups are ignored);
/// * `truth[i]` — the ground-truth record of extract `i` (`None` =
///   extraneous page furniture);
/// * `num_truth` — number of true records on the page.
///
/// Rules, following the paper's record-level accounting:
///
/// * a truth record with no extract assigned anywhere is **unsegmented**
///   (FN); a truth record none of whose extracts were *observed* at all is
///   also FN — the segmenter never had a chance to emit it;
/// * a truth record whose observed extracts are exactly one predicted
///   group (and that group contains nothing else) is **correct** (Cor);
/// * any other truth record with assigned extracts is **incorrect**
///   (InCor);
/// * a non-empty predicted group containing only extraneous extracts is a
///   **non-record** (FP).
pub fn classify(groups: &[Vec<usize>], truth: &[Option<usize>], num_truth: usize) -> PageCounts {
    let mut counts = PageCounts::default();

    // Which group is each extract in?
    let mut group_of: Vec<Option<usize>> = vec![None; truth.len()];
    for (p, group) in groups.iter().enumerate() {
        for &i in group {
            if i < truth.len() {
                group_of[i] = Some(p);
            }
        }
    }

    for t in 0..num_truth {
        // The observed extracts of truth record t.
        let members: Vec<usize> = (0..truth.len()).filter(|&i| truth[i] == Some(t)).collect();
        if members.is_empty() {
            // Nothing of this record was observed: unsegmented.
            counts.fneg += 1;
            continue;
        }
        let assigned_groups: BTreeSet<usize> =
            members.iter().filter_map(|&i| group_of[i]).collect();
        if assigned_groups.is_empty() {
            counts.fneg += 1;
            continue;
        }
        if assigned_groups.len() == 1 {
            let p = *assigned_groups.iter().next().expect("non-empty");
            let group: BTreeSet<usize> = groups[p].iter().copied().collect();
            let member_set: BTreeSet<usize> = members.iter().copied().collect();
            if group == member_set {
                counts.cor += 1;
                continue;
            }
        }
        counts.incor += 1;
    }

    // Non-records: groups made purely of extraneous extracts.
    for group in groups {
        if group.is_empty() {
            continue;
        }
        let all_extraneous = group
            .iter()
            .all(|&i| i >= truth.len() || truth[i].is_none());
        if all_extraneous {
            counts.fpos += 1;
        }
    }

    counts
}

/// Classifies a *span-based* segmentation (used for the layout baselines,
/// which emit byte ranges rather than extract groups).
///
/// A truth record is **Cor** when exactly one predicted span intersects it
/// and that span intersects no other truth record; with no intersecting
/// prediction it is **FN**; otherwise **InCor**. Predictions intersecting
/// no truth record are **FP**.
pub fn classify_spans(pred: &[Range<usize>], truth: &[Range<usize>]) -> PageCounts {
    let intersects = |a: &Range<usize>, b: &Range<usize>| a.start < b.end && b.start < a.end;
    let mut counts = PageCounts::default();
    for t in truth {
        let hits: Vec<&Range<usize>> = pred.iter().filter(|p| intersects(p, t)).collect();
        match hits.as_slice() {
            [] => counts.fneg += 1,
            [p] => {
                let exclusive = truth.iter().filter(|t2| intersects(p, t2)).count() == 1;
                if exclusive {
                    counts.cor += 1;
                } else {
                    counts.incor += 1;
                }
            }
            _ => counts.incor += 1,
        }
    }
    for p in pred {
        if !truth.iter().any(|t| intersects(p, t)) {
            counts.fpos += 1;
        }
    }
    counts
}

/// One predicted parent record in a nested segmentation: the parent's byte
/// span plus the sub-record segmentation the recursive pass produced
/// inside it (extract groups over absolute byte offsets).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NestedParentPred {
    /// The predicted parent span (absolute byte offsets).
    pub span: Range<usize>,
    /// `groups[r]` — indices into `extract_offsets` assigned to
    /// sub-record `r`.
    pub groups: Vec<Vec<usize>>,
    /// Absolute byte offset of each kept sub-extract.
    pub extract_offsets: Vec<usize>,
}

/// Ground truth for one parent record: its byte span and the spans of the
/// sub-records nested inside it (all absolute).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NestedParentTruth {
    /// The true parent span.
    pub span: Range<usize>,
    /// The true sub-record spans inside the parent.
    pub subs: Vec<Range<usize>>,
}

fn overlap(a: &Range<usize>, b: &Range<usize>) -> usize {
    a.end.min(b.end).saturating_sub(a.start.max(b.start))
}

/// Classifies a nested segmentation at the **sub-record** level.
///
/// Truth parents are matched to predicted parents greedily by byte
/// overlap (each prediction used at most once, truth parents in document
/// order). For each matched pair the sub-record segmentation is scored
/// with the ordinary [`classify`] via [`truth_of_extracts`] over the
/// truth sub-spans; the per-parent counts are summed. A truth parent with
/// no overlapping prediction contributes all its sub-records as FN; an
/// unmatched prediction contributes each non-empty sub-group as FP.
pub fn classify_nested(pred: &[NestedParentPred], truth: &[NestedParentTruth]) -> PageCounts {
    let mut counts = PageCounts::default();
    let mut used = vec![false; pred.len()];
    for t in truth {
        let best = pred
            .iter()
            .enumerate()
            .filter(|(i, p)| !used[*i] && overlap(&p.span, &t.span) > 0)
            .max_by_key(|(_, p)| overlap(&p.span, &t.span))
            .map(|(i, _)| i);
        let Some(i) = best else {
            counts.fneg += t.subs.len();
            continue;
        };
        used[i] = true;
        let p = &pred[i];
        let sub_truth = truth_of_extracts(&p.extract_offsets, &t.subs);
        counts = counts.add(&classify(&p.groups, &sub_truth, t.subs.len()));
    }
    for (i, p) in pred.iter().enumerate() {
        if !used[i] {
            counts.fpos += p.groups.iter().filter(|g| !g.is_empty()).count();
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_perfect_alignment() {
        let truth = vec![0..10, 10..20];
        let c = classify_spans(&[1..9, 11..19], &truth);
        assert_eq!(c.cor, 2);
        assert_eq!(c.incor + c.fneg + c.fpos, 0);
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)] // one span, not a range of values
    fn spans_merged_prediction_is_incorrect() {
        let truth = vec![0..10, 10..20];
        let c = classify_spans(&[0..20], &truth);
        assert_eq!(c.incor, 2);
        assert_eq!(c.cor, 0);
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)] // one span, not a range of values
    fn spans_split_prediction_is_incorrect() {
        let truth = vec![0..10];
        let c = classify_spans(&[0..4, 5..9], &truth);
        assert_eq!(c.incor, 1);
    }

    #[test]
    fn spans_missing_and_extraneous() {
        let truth = vec![0..10, 20..30];
        let c = classify_spans(&[0..10, 40..50], &truth);
        assert_eq!(c.cor, 1);
        assert_eq!(c.fneg, 1);
        assert_eq!(c.fpos, 1);
    }

    #[test]
    fn truth_mapping_by_offset() {
        let spans = vec![10..20, 20..40];
        let offsets = vec![12, 25, 5, 39];
        assert_eq!(
            truth_of_extracts(&offsets, &spans),
            vec![Some(0), Some(1), None, Some(1)]
        );
    }

    #[test]
    fn perfect_segmentation() {
        // Two records, two extracts each.
        let truth = vec![Some(0), Some(0), Some(1), Some(1)];
        let groups = vec![vec![0, 1], vec![2, 3]];
        let c = classify(&groups, &truth, 2);
        assert_eq!(
            c,
            PageCounts {
                cor: 2,
                incor: 0,
                fneg: 0,
                fpos: 0
            }
        );
    }

    #[test]
    fn merged_records_are_incorrect() {
        let truth = vec![Some(0), Some(0), Some(1), Some(1)];
        let groups = vec![vec![0, 1, 2, 3]];
        let c = classify(&groups, &truth, 2);
        assert_eq!(c.cor, 0);
        assert_eq!(c.incor, 2);
    }

    #[test]
    fn split_record_is_incorrect() {
        let truth = vec![Some(0), Some(0)];
        let groups = vec![vec![0], vec![1]];
        let c = classify(&groups, &truth, 1);
        assert_eq!(c.cor, 0);
        assert_eq!(c.incor, 1);
    }

    #[test]
    fn unassigned_record_is_unsegmented() {
        let truth = vec![Some(0), Some(0), Some(1)];
        let groups = vec![vec![0, 1], vec![]];
        let c = classify(&groups, &truth, 2);
        assert_eq!(c.cor, 1);
        assert_eq!(c.fneg, 1);
    }

    #[test]
    fn unobserved_record_is_unsegmented() {
        // Truth record 1 has no observed extracts at all.
        let truth = vec![Some(0), Some(0)];
        let groups = vec![vec![0, 1]];
        let c = classify(&groups, &truth, 2);
        assert_eq!(c.cor, 1);
        assert_eq!(c.fneg, 1);
    }

    #[test]
    fn extraneous_only_group_is_false_positive() {
        let truth = vec![Some(0), None, None];
        let groups = vec![vec![0], vec![1, 2]];
        let c = classify(&groups, &truth, 1);
        assert_eq!(c.cor, 1);
        assert_eq!(c.fpos, 1);
    }

    #[test]
    fn group_with_extra_extraneous_extract_spoils_correctness() {
        let truth = vec![Some(0), Some(0), None];
        let groups = vec![vec![0, 1, 2]];
        let c = classify(&groups, &truth, 1);
        assert_eq!(c.cor, 0);
        assert_eq!(c.incor, 1);
        assert_eq!(c.fpos, 0, "mixed group is not a pure non-record");
    }

    #[test]
    fn partial_record_is_incorrect() {
        // Only one of record 0's two observed extracts was assigned.
        let truth = vec![Some(0), Some(0)];
        let groups = vec![vec![0]];
        let c = classify(&groups, &truth, 1);
        assert_eq!(c.incor, 1);
    }

    #[test]
    fn empty_everything() {
        let c = classify(&[], &[], 0);
        assert_eq!(c, PageCounts::default());
    }

    #[test]
    fn nested_perfect_segmentation() {
        // Two parents, two sub-records each, all segmented cleanly.
        let pred = vec![
            NestedParentPred {
                span: 0..50,
                groups: vec![vec![0, 1], vec![2, 3]],
                extract_offsets: vec![2, 5, 22, 28],
            },
            NestedParentPred {
                span: 50..100,
                groups: vec![vec![0], vec![1]],
                extract_offsets: vec![55, 80],
            },
        ];
        let truth = vec![
            NestedParentTruth {
                span: 0..50,
                subs: vec![0..20, 20..50],
            },
            NestedParentTruth {
                span: 50..100,
                subs: vec![50..70, 70..100],
            },
        ];
        let c = classify_nested(&pred, &truth);
        assert_eq!(
            c,
            PageCounts {
                cor: 4,
                incor: 0,
                fneg: 0,
                fpos: 0
            }
        );
    }

    #[test]
    fn nested_missed_parent_counts_all_subs_unsegmented() {
        let pred = vec![NestedParentPred {
            span: 0..50,
            groups: vec![vec![0], vec![1]],
            extract_offsets: vec![2, 30],
        }];
        let truth = vec![
            NestedParentTruth {
                span: 0..50,
                subs: vec![0..20, 20..50],
            },
            NestedParentTruth {
                span: 50..100,
                subs: vec![50..60, 60..80, 80..100],
            },
        ];
        let c = classify_nested(&pred, &truth);
        assert_eq!(c.cor, 2);
        assert_eq!(c.fneg, 3);
    }

    #[test]
    fn nested_spurious_parent_counts_groups_as_non_records() {
        let pred = vec![
            NestedParentPred {
                span: 0..50,
                groups: vec![vec![0]],
                extract_offsets: vec![2],
            },
            NestedParentPred {
                span: 200..260,
                groups: vec![vec![0], vec![1], vec![]],
                extract_offsets: vec![205, 240],
            },
        ];
        let whole = 0..50;
        let truth = vec![NestedParentTruth {
            span: whole.clone(),
            subs: vec![whole],
        }];
        let c = classify_nested(&pred, &truth);
        assert_eq!(c.cor, 1);
        assert_eq!(c.fpos, 2, "only the spurious parent's non-empty groups");
    }

    #[test]
    fn nested_matching_prefers_larger_overlap() {
        // Two predictions overlap the truth parent; the better one wins
        // and the other becomes spurious.
        let pred = vec![
            NestedParentPred {
                span: 0..10,
                groups: vec![vec![0]],
                extract_offsets: vec![1],
            },
            NestedParentPred {
                span: 5..50,
                groups: vec![vec![0]],
                extract_offsets: vec![20],
            },
        ];
        let whole = 8..50;
        let truth = vec![NestedParentTruth {
            span: whole.clone(),
            subs: vec![whole],
        }];
        let c = classify_nested(&pred, &truth);
        assert_eq!(c.cor, 1);
        assert_eq!(c.fpos, 1);
    }

    #[test]
    fn counts_add() {
        let a = PageCounts {
            cor: 1,
            incor: 2,
            fneg: 3,
            fpos: 4,
        };
        let b = a.add(&a);
        assert_eq!(b.cor, 2);
        assert_eq!(b.fpos, 8);
        assert_eq!(a.total_records(), 6);
    }
}
