//! Evaluation of record segmentations (Section 6.2 of the paper).
//!
//! "We manually checked the results of automatic segmentation and
//! classified them as correctly segmented (Cor) and incorrectly segmented
//! (InCor) records, unsegmented records (FN) and non-records (FP)."
//!
//! The simulator provides exact ground truth (the byte span of every
//! record row), so the check is mechanical: [`classify`](fn@classify) maps each truth
//! record and each predicted group to one of the paper's four categories,
//! and [`metrics`] computes the paper's precision/recall/F:
//!
//! ```text
//! P = Cor / (Cor + InCor + FP)
//! R = Cor / (Cor + FN)
//! F = 2PR / (P + R)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod metrics;
pub mod report;

pub use classify::{
    classify, classify_nested, classify_spans, truth_of_extracts, NestedParentPred,
    NestedParentTruth, PageCounts,
};
pub use metrics::Metrics;
