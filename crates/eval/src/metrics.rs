//! Precision, recall and F measure, as defined in Section 6.2.

use serde::{Deserialize, Serialize};

use crate::classify::PageCounts;

/// The paper's accuracy metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// `P = Cor / (Cor + InCor + FP)`
    pub precision: f64,
    /// `R = Cor / (Cor + FN)`
    pub recall: f64,
    /// `F = 2PR / (P + R)`
    pub f1: f64,
}

impl Metrics {
    /// Computes the metrics from classification counts. Degenerate
    /// denominators yield 0.
    pub fn from_counts(c: &PageCounts) -> Metrics {
        let p_den = c.cor + c.incor + c.fpos;
        let r_den = c.cor + c.fneg;
        let precision = if p_den == 0 {
            0.0
        } else {
            c.cor as f64 / p_den as f64
        };
        let recall = if r_den == 0 {
            0.0
        } else {
            c.cor as f64 / r_den as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Metrics {
            precision,
            recall,
            f1,
        }
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "P={:.2} R={:.2} F={:.2}",
            self.precision, self.recall, self.f1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_scores() {
        let m = Metrics::from_counts(&PageCounts {
            cor: 10,
            incor: 0,
            fneg: 0,
            fpos: 0,
        });
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
    }

    #[test]
    fn paper_formulas() {
        let m = Metrics::from_counts(&PageCounts {
            cor: 6,
            incor: 2,
            fneg: 4,
            fpos: 2,
        });
        assert!((m.precision - 0.6).abs() < 1e-12);
        assert!((m.recall - 0.6).abs() < 1e-12);
        assert!((m.f1 - 0.6).abs() < 1e-12);
    }

    #[test]
    fn degenerate_counts() {
        let m = Metrics::from_counts(&PageCounts::default());
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f1, 0.0);
    }

    #[test]
    fn display_rounds() {
        let m = Metrics {
            precision: 0.748,
            recall: 0.991,
            f1: 0.853,
        };
        assert_eq!(m.to_string(), "P=0.75 R=0.99 F=0.85");
    }
}
