//! Property tests for the record classifier: count conservation and
//! agreement with the paper's category definitions on random
//! segmentations.

use proptest::prelude::*;

use tableseg_eval::classify::{classify, classify_spans, PageCounts};
use tableseg_eval::Metrics;

proptest! {
    /// Every truth record lands in exactly one of Cor/InCor/FN, so the
    /// categories always sum to the number of truth records; FP counts
    /// only non-empty all-extraneous groups.
    #[test]
    fn truth_records_are_conserved(
        truth in proptest::collection::vec(proptest::option::of(0usize..5), 0..20),
        groups_spec in proptest::collection::vec(
            proptest::collection::vec(0usize..20, 0..6), 0..8),
        num_truth in 0usize..6,
    ) {
        // Clamp group members to valid extract indices.
        let groups: Vec<Vec<usize>> = groups_spec
            .iter()
            .map(|g| {
                let mut g: Vec<usize> = g.iter().copied().filter(|&i| i < truth.len()).collect();
                g.sort_unstable();
                g.dedup();
                g
            })
            .collect();
        let truth: Vec<Option<usize>> = truth
            .into_iter()
            .map(|t| t.filter(|&x| x < num_truth))
            .collect();
        let c = classify(&groups, &truth, num_truth);
        prop_assert_eq!(c.cor + c.incor + c.fneg, num_truth, "{:?}", c);
        prop_assert!(c.fpos <= groups.iter().filter(|g| !g.is_empty()).count());
        // Metrics are well-defined and in [0, 1].
        let m = Metrics::from_counts(&c);
        prop_assert!((0.0..=1.0).contains(&m.precision));
        prop_assert!((0.0..=1.0).contains(&m.recall));
        prop_assert!((0.0..=1.0).contains(&m.f1));
        prop_assert!(m.f1 <= m.precision.max(m.recall) + 1e-12);
    }

    /// A segmentation that assigns each truth record's extracts to its own
    /// group scores perfectly.
    #[test]
    fn perfect_grouping_scores_perfectly(
        sizes in proptest::collection::vec(1usize..5, 1..6),
    ) {
        let mut truth = Vec::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for (t, &size) in sizes.iter().enumerate() {
            let mut group = Vec::new();
            for _ in 0..size {
                group.push(truth.len());
                truth.push(Some(t));
            }
            groups.push(group);
        }
        let c = classify(&groups, &truth, sizes.len());
        prop_assert_eq!(
            c,
            PageCounts { cor: sizes.len(), incor: 0, fneg: 0, fpos: 0 }
        );
    }

    /// Span classification conserves truth records too.
    #[test]
    fn span_classification_conserves_truth(
        bounds in proptest::collection::vec((0usize..100, 1usize..20), 0..8),
        pred in proptest::collection::vec((0usize..100, 1usize..20), 0..8),
    ) {
        // Build disjoint, ordered truth spans.
        let mut truth = Vec::new();
        let mut cursor = 0;
        for (gap, len) in bounds {
            let start = cursor + gap;
            truth.push(start..start + len);
            cursor = start + len;
        }
        let pred: Vec<std::ops::Range<usize>> =
            pred.into_iter().map(|(s, l)| s..s + l).collect();
        let c = classify_spans(&pred, &truth);
        prop_assert_eq!(c.cor + c.incor + c.fneg, truth.len());
        prop_assert!(c.fpos <= pred.len());
    }
}
