//! Universe mode: procedural mega-corpora of simulated sites.
//!
//! The paper's evaluation uses twelve hand-modelled sites
//! ([`crate::paper_sites`]); scale-out benchmarking needs thousands.
//! A [`Universe`] is a *recipe*, not a corpus: it derives the [`SiteSpec`]
//! of site `i` deterministically from `(seed, i)` — domain mix, layout
//! style, quirk cocktail, page and record counts, optional fault
//! injection — and generates each site **on demand**. Nothing is
//! materialized up front, so a driver can stream millions of pages
//! through the pipeline while holding only the sites currently in
//! flight; per-site state is dropped as soon as its report is reduced.
//!
//! Every site is independently derivable: `universe.site(i)` is pure in
//! `(config, i)`, so work can be sharded across the batch engine in any
//! order at any thread count with byte-identical results.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::chaos::{apply_chaos, ChaosConfig, ChaosLog};
use crate::domains::Domain;
use crate::quirks::Quirk;
use crate::site::{generate, GeneratedSite, LayoutStyle, SiteSpec};

/// The shape of a procedurally generated universe of sites.
#[derive(Debug, Clone, PartialEq)]
pub struct UniverseConfig {
    /// Number of sites in the universe.
    pub sites: usize,
    /// Master seed; every site spec derives from `(seed, index)`.
    pub seed: u64,
    /// Minimum sample list pages per site (inclusive).
    pub min_list_pages: usize,
    /// Maximum sample list pages per site (inclusive).
    pub max_list_pages: usize,
    /// Minimum records per list page (inclusive).
    pub min_records: usize,
    /// Maximum records per list page (inclusive).
    pub max_records: usize,
    /// Per-(page, fault-kind) chaos probability; `0.0` disables fault
    /// injection entirely.
    pub fault_rate: f64,
}

impl Default for UniverseConfig {
    fn default() -> UniverseConfig {
        UniverseConfig {
            sites: 1000,
            seed: 0x0705_1EED_0BAD_CAFE,
            min_list_pages: 2,
            max_list_pages: 4,
            min_records: 3,
            max_records: 18,
            fault_rate: 0.0,
        }
    }
}

/// A deterministic, lazily generated universe of sites.
#[derive(Debug, Clone)]
pub struct Universe {
    cfg: UniverseConfig,
}

/// SplitMix64 finalizer: decorrelates `(seed, index)` pairs so adjacent
/// site indexes draw unrelated spec parameters.
fn mix(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Universe {
    /// Creates a universe from its config.
    pub fn new(cfg: UniverseConfig) -> Universe {
        assert!(cfg.min_list_pages >= 1, "a site needs at least one page");
        assert!(
            cfg.min_list_pages <= cfg.max_list_pages && cfg.min_records <= cfg.max_records,
            "universe ranges must be non-empty"
        );
        Universe { cfg }
    }

    /// The universe's config.
    pub fn config(&self) -> &UniverseConfig {
        &self.cfg
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.cfg.sites
    }

    /// Returns `true` if the universe has no sites.
    pub fn is_empty(&self) -> bool {
        self.cfg.sites == 0
    }

    /// Derives the spec of site `index`. Pure in `(config, index)`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn spec(&self, index: usize) -> SiteSpec {
        assert!(index < self.cfg.sites, "site index out of universe bounds");
        let mut rng = StdRng::seed_from_u64(mix(self.cfg.seed, index as u64));
        let domain = Domain::ALL[rng.random_range(0..Domain::ALL.len())];
        // Grid tables dominate real hidden-web sites; numbered lists and
        // free-form layouts are the interesting minorities.
        let layout = match rng.random_range(0..4u32) {
            0 | 1 => LayoutStyle::GridTable,
            2 => LayoutStyle::NumberedList,
            _ => LayoutStyle::FreeForm,
        };
        let pages = rng.random_range(self.cfg.min_list_pages..=self.cfg.max_list_pages);
        let records_per_page = (0..pages)
            .map(|_| rng.random_range(self.cfg.min_records..=self.cfg.max_records))
            .collect();
        let quirks = draw_quirks(domain, &mut rng);
        let continuous_numbering = layout == LayoutStyle::NumberedList && rng.random_bool(0.5);
        let overlap = if rng.random_bool(0.1) { 1 } else { 0 };
        let missing_field_prob = if rng.random_bool(0.5) {
            rng.random_range(0..=20u32) as f64 / 100.0
        } else {
            0.0
        };
        SiteSpec {
            name: format!("universe-{index:06}"),
            domain,
            layout,
            records_per_page,
            quirks,
            missing_field_prob,
            continuous_numbering,
            overlap,
            seed: mix(self.cfg.seed ^ 0x5172, index as u64),
        }
    }

    /// Generates site `index` — spec derivation, page generation, and
    /// (when `fault_rate > 0`) chaos injection — returning the fault log
    /// alongside the site. This is the streaming entry point: nothing is
    /// cached, and dropping the result frees all of the site's memory.
    pub fn site_logged(&self, index: usize) -> (GeneratedSite, ChaosLog) {
        let spec = self.spec(index);
        let site = generate(&spec);
        if self.cfg.fault_rate > 0.0 {
            let chaos = ChaosConfig::uniform(
                self.cfg.fault_rate,
                mix(self.cfg.seed ^ 0xFA17, index as u64),
            );
            apply_chaos(&site, &chaos)
        } else {
            (site, ChaosLog::default())
        }
    }

    /// [`Universe::site_logged`] without the fault log.
    pub fn site(&self, index: usize) -> GeneratedSite {
        self.site_logged(index).0
    }

    /// Iterates all sites lazily, in index order.
    pub fn sites(&self) -> impl Iterator<Item = GeneratedSite> + '_ {
        (0..self.len()).map(|i| self.site(i))
    }
}

/// Draws a domain-appropriate quirk cocktail: zero to three quirks from
/// the domain's palette, without replacement. Field names are the ones
/// the domain schemas actually carry, so every quirk is live.
fn draw_quirks(domain: Domain, rng: &mut StdRng) -> Vec<Quirk> {
    let palette: &[Quirk] = match domain {
        Domain::WhitePages => &[
            Quirk::SharedValueMissingOnDetail { field: "city" },
            Quirk::DisjunctiveFormatting { field: "address" },
            Quirk::QueryEcho { field: "city" },
            Quirk::CaseMismatch { field: "name" },
            Quirk::BrowsingHistory,
            Quirk::ListPagePromos { count: 2 },
        ],
        Domain::Books => &[
            Quirk::EtAlAbbreviation { field: "authors" },
            Quirk::BrowsingHistory,
            Quirk::ListPagePromos { count: 3 },
        ],
        Domain::PropertyTax => &[Quirk::BrowsingHistory, Quirk::ListPagePromos { count: 1 }],
        Domain::Corrections => &[
            Quirk::ValueInUnrelatedContext { field: "status" },
            Quirk::CaseMismatch { field: "status" },
            Quirk::QueryEcho { field: "facility" },
            Quirk::BrowsingHistory,
        ],
    };
    let count = rng.random_range(0..=3usize).min(palette.len());
    let mut picks: Vec<usize> = Vec::with_capacity(count);
    while picks.len() < count {
        let k = rng.random_range(0..palette.len());
        if !picks.contains(&k) {
            picks.push(k);
        }
    }
    picks.into_iter().map(|k| palette[k]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_are_deterministic_and_diverse() {
        let u = Universe::new(UniverseConfig {
            sites: 64,
            ..UniverseConfig::default()
        });
        let v = Universe::new(u.config().clone());
        let mut domains = std::collections::HashSet::new();
        let mut layouts = std::collections::HashSet::new();
        let mut quirky = 0usize;
        for i in 0..u.len() {
            let a = u.spec(i);
            let b = v.spec(i);
            assert_eq!(a, b, "site {i} must be pure in (config, index)");
            assert!(!a.records_per_page.is_empty());
            assert!(a.records_per_page.iter().all(|&r| (3..=18).contains(&r)));
            domains.insert(format!("{:?}", a.domain));
            layouts.insert(format!("{:?}", a.layout));
            quirky += usize::from(!a.quirks.is_empty());
        }
        assert_eq!(domains.len(), 4, "all domains in the mix");
        assert_eq!(layouts.len(), 3, "all layouts in the mix");
        assert!(quirky > 10, "quirk cocktails occur: {quirky}");
    }

    #[test]
    fn sites_generate_and_stream() {
        let u = Universe::new(UniverseConfig {
            sites: 4,
            ..UniverseConfig::default()
        });
        for (i, site) in u.sites().enumerate() {
            assert_eq!(site.pages.len(), u.spec(i).records_per_page.len());
            for page in &site.pages {
                assert!(!page.list_html.is_empty());
                assert_eq!(page.detail_html.len(), page.truth.records.len());
            }
        }
    }

    #[test]
    fn quirk_fields_exist_in_domain_schemas() {
        let u = Universe::new(UniverseConfig {
            sites: 200,
            ..UniverseConfig::default()
        });
        for i in 0..u.len() {
            let spec = u.spec(i);
            let schema = spec.domain.schema();
            for q in &spec.quirks {
                let field = match q {
                    Quirk::CaseMismatch { field }
                    | Quirk::EtAlAbbreviation { field }
                    | Quirk::ValueInUnrelatedContext { field }
                    | Quirk::SharedValueMissingOnDetail { field }
                    | Quirk::DisjunctiveFormatting { field }
                    | Quirk::QueryEcho { field } => field,
                    Quirk::BrowsingHistory | Quirk::ListPagePromos { .. } => continue,
                };
                assert!(
                    schema.field_index(field).is_some(),
                    "site {i}: quirk field {field:?} missing from {:?}",
                    spec.domain
                );
            }
        }
    }

    #[test]
    fn fault_rate_injects_deterministically() {
        let cfg = UniverseConfig {
            sites: 8,
            fault_rate: 0.3,
            ..UniverseConfig::default()
        };
        let u = Universe::new(cfg.clone());
        let v = Universe::new(cfg);
        let mut faults = 0usize;
        for i in 0..u.len() {
            let (a, log_a) = u.site_logged(i);
            let (b, log_b) = v.site_logged(i);
            assert_eq!(a, b, "chaos must be deterministic per site");
            assert_eq!(log_a.len(), log_b.len());
            faults += log_a.len();
        }
        assert!(faults > 0, "a 0.3 fault rate must inject something");
    }
}
