//! A deterministic hidden-web site simulator.
//!
//! The paper evaluates on 12 live web sites from 2004 (book sellers,
//! property-tax registers, white pages, corrections departments). Those
//! sites are gone; this crate generates synthetic sites by the same process
//! the paper assumes real sites follow (Section 3): a record database, a
//! *page template* and a *table template* that a "server" fills with query
//! results, producing **list pages** and per-record **detail pages**.
//!
//! Each of the paper's sites is mirrored by a configuration in
//! [`paper_sites`] reproducing its domain, layout style, table sizes and —
//! crucially — the documented data quirks that drive the paper's failure
//! analysis (Section 6.3):
//!
//! * numbered entries that break page-template finding (Amazon, BN Books,
//!   Minnesota Corrections);
//! * `"FirstName LastName, et al"` abbreviations (Amazon);
//! * case mismatches between list and detail values (Minnesota);
//! * a list value appearing on an unrelated detail page
//!   ("Parole"/"Parolee", Michigan);
//! * a field missing from one record's detail page but present in others
//!   (Canada411);
//! * browsing-history contamination of detail pages (Amazon);
//! * disjunctive formatting of missing fields (Superpages).
//!
//! Everything is seeded; the same spec always yields the same site. Along
//! with the HTML, generation records the **byte span of every record row**
//! in each list page — the machine-checkable ground truth the evaluation
//! crate uses in place of the paper's manual inspection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ads;
pub mod chaos;
pub mod db;
pub mod domains;
pub mod layout;
pub mod paper_sites;
pub mod quirks;
pub mod scenario;
pub mod site;
pub mod truth;
pub mod universe;

pub use chaos::{
    apply_chaos, generate_chaotic, ChaosConfig, ChaosLog, FaultKind, FaultSpec, InjectedFault,
};
pub use quirks::Quirk;
pub use scenario::{
    detect_cohort, generate_multi_table, generate_nested, nested_cohort, MultiTablePage,
    MultiTableSite, MultiTableSpec, NestedPage, NestedParentTruth, NestedSite, NestedSpec,
    NestedTruth, RegionLabel, RegionSpan, TableSpec,
};
pub use site::{generate, GeneratedSite, LayoutStyle, SiteSpec};
pub use truth::{GroundTruth, RecordSpan};
pub use universe::{Universe, UniverseConfig};
