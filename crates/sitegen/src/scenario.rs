//! Scenario-diversity page generation: multi-table pages with non-table
//! noise regions, and nested-record pages.
//!
//! The paper's corpus ([`crate::paper_sites`]) is flat single-table list
//! pages. ROADMAP open item 2 calls for two harder page shapes:
//!
//! * **multi-table pages** — several independent result tables on one
//!   page, interleaved with *noise regions* (a navigation bar, an
//!   advertisement block, a link footer). The pipeline needs a
//!   table-region detection stage before segmentation ("Identifying Web
//!   Tables", PAPERS.md); the ground truth here records every region's
//!   byte span and kind plus per-table record spans, so region
//!   precision/recall and per-region segmentation accuracy are both
//!   mechanical;
//! * **nested-record pages** — each parent record carries a repeating
//!   sub-record table ("Extraction of Flat and Nested Data Records from
//!   Web Pages", PAPERS.md). Every sub-record links to its own
//!   sub-detail page, so the recursive pass can re-run the full
//!   list/detail machinery one level down. Ground truth records parent
//!   spans and, inside each, the sub-record spans.
//!
//! Both generators are deterministic in their spec's seed, like
//! [`crate::site::generate`], and both expose a [`GeneratedSite`] adapter
//! so the chaos layer ([`crate::chaos::apply_chaos`]) can damage scenario
//! pages with remapped (flattened) record truth — the fault × scenario
//! interaction matrix in `crates/sitegen/tests/scenario_props.rs` runs on
//! exactly that adapter.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use tableseg_html::writer::HtmlWriter;

use crate::db::{Record, Schema};
use crate::domains::Domain;
use crate::layout::render_detail_page;
use crate::quirks::RecordView;
use crate::site::{GeneratedPage, GeneratedSite, SiteSpec};
use crate::truth::{GroundTruth, RecordSpan};
use crate::LayoutStyle;

// ---- multi-table pages with noise regions ----------------------------

/// One result table on a multi-table page.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TableSpec {
    /// The table's information domain.
    pub domain: Domain,
    /// Records per sample page.
    pub records: usize,
}

/// The specification of a site whose list pages carry several independent
/// tables plus non-table regions.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MultiTableSpec {
    /// Site name (appears in page chrome).
    pub name: String,
    /// The result tables, in page order.
    pub tables: Vec<TableSpec>,
    /// Links in the navigation bar above the first table (0 = no bar).
    pub nav_links: usize,
    /// Whether an advertisement block separates the tables.
    pub ad_block: bool,
    /// Links in the footer below the last table (0 = no footer).
    pub footer_links: usize,
    /// Number of sample list pages.
    pub pages: usize,
    /// Master random seed.
    pub seed: u64,
}

/// What a truth region is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum RegionLabel {
    /// A result table (the detection stage must find these).
    Table,
    /// The navigation bar.
    Nav,
    /// The advertisement block.
    Ad,
    /// The link footer.
    Footer,
}

/// The byte span of one region on a multi-table page.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct RegionSpan {
    /// Start byte offset (inclusive).
    pub start: usize,
    /// End byte offset (exclusive).
    pub end: usize,
    /// The region's kind.
    pub label: RegionLabel,
    /// For [`RegionLabel::Table`]: index into
    /// [`MultiTablePage::tables`].
    pub table: Option<usize>,
}

/// One generated multi-table list page.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MultiTablePage {
    /// The list-page HTML.
    pub list_html: String,
    /// Detail pages: `details[t][i]` belongs to table `t`, record `i`.
    pub details: Vec<Vec<String>>,
    /// Every region's byte span and kind, in page order.
    pub regions: Vec<RegionSpan>,
    /// Per-table record ground truth, absolute byte offsets.
    pub tables: Vec<GroundTruth>,
}

impl MultiTablePage {
    /// The byte spans of the table regions only, in page order.
    pub fn table_region_spans(&self) -> Vec<std::ops::Range<usize>> {
        self.regions
            .iter()
            .filter(|r| r.label == RegionLabel::Table)
            .map(|r| r.start..r.end)
            .collect()
    }
}

/// A fully generated multi-table site.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MultiTableSite {
    /// The spec this site was generated from.
    pub spec: MultiTableSpec,
    /// The sample list pages.
    pub pages: Vec<MultiTablePage>,
}

impl MultiTableSite {
    /// All list-page HTML, for template induction.
    pub fn list_htmls(&self) -> Vec<&str> {
        self.pages.iter().map(|p| p.list_html.as_str()).collect()
    }

    /// Flattens the site into a [`GeneratedSite`] (all tables' record
    /// spans in one [`GroundTruth`], all detail pages concatenated in
    /// table order) so the chaos layer and other flat-truth tooling can
    /// consume scenario pages. Region structure is not representable
    /// there and is dropped.
    pub fn as_generated_site(&self) -> GeneratedSite {
        let spec = flat_spec(
            &self.spec.name,
            self.pages
                .iter()
                .map(|p| p.tables.iter().map(GroundTruth::len).sum()),
            self.spec.seed,
        );
        let pages = self
            .pages
            .iter()
            .map(|p| GeneratedPage {
                list_html: p.list_html.clone(),
                detail_html: p.details.iter().flatten().cloned().collect(),
                truth: GroundTruth {
                    records: p.tables.iter().flat_map(|t| t.records.clone()).collect(),
                },
            })
            .collect();
        GeneratedSite { spec, pages }
    }
}

/// A flat [`SiteSpec`] standing in for a scenario site in adapters.
fn flat_spec(name: &str, records_per_page: impl Iterator<Item = usize>, seed: u64) -> SiteSpec {
    SiteSpec {
        name: name.to_owned(),
        domain: Domain::WhitePages,
        layout: LayoutStyle::GridTable,
        records_per_page: records_per_page.collect(),
        quirks: vec![],
        missing_field_prob: 0.0,
        continuous_numbering: false,
        overlap: 0,
        seed,
    }
}

/// A plain [`RecordView`]: every field present on both pages, no
/// alternate markup, no extras.
fn plain_view(record: &Record) -> RecordView {
    RecordView {
        list_values: record.values.iter().cloned().map(Some).collect(),
        alternate_markup: vec![false; record.values.len()],
        detail_values: record.values.iter().cloned().map(Some).collect(),
        detail_extras: Vec::new(),
    }
}

fn render_nav(w: &mut HtmlWriter, labels: &[&str], count: usize) {
    w.open("ul");
    for k in 0..count {
        w.open("li");
        w.open_attrs("a", &format!("href=\"/nav/{k}\""))
            .text(labels[k % labels.len()])
            .close();
        w.close();
    }
    w.close(); // ul
    w.newline();
}

/// Renders one bordered result table; returns the record spans.
fn render_table_block(
    w: &mut HtmlWriter,
    schema: &Schema,
    views: &[RecordView],
    page: usize,
    table: usize,
) -> Vec<RecordSpan> {
    let mut spans = Vec::with_capacity(views.len());
    w.open_attrs("table", "border=1 cellpadding=2");
    w.newline();
    w.open("tr");
    for f in &schema.fields {
        w.element("th", f.label);
    }
    w.close();
    w.newline();
    for (i, view) in views.iter().enumerate() {
        let start = w.snapshot_len();
        w.open("tr");
        for (fi, lv) in view.list_values.iter().enumerate() {
            w.open("td");
            match lv {
                Some(v) if fi == 0 => {
                    w.open_attrs("a", &format!("href=\"/detail/{page}/{table}/{i}\""))
                        .text(v)
                        .close();
                }
                Some(v) => {
                    w.text(v);
                }
                None => {
                    w.raw("&nbsp;");
                }
            }
            w.close();
        }
        w.close();
        let end = w.snapshot_len();
        spans.push(RecordSpan {
            start,
            end,
            values: view.list_values.iter().flatten().cloned().collect(),
        });
        w.newline();
    }
    w.close(); // table
    w.newline();
    spans
}

const NAV_LABELS: [&str; 6] = ["Home", "Search", "Browse", "Help", "About Us", "Contact"];
const FOOTER_LABELS: [&str; 4] = ["Privacy Policy", "Terms of Use", "Feedback", "Site Map"];

/// Generates a multi-table site from its spec. Deterministic in the seed.
pub fn generate_multi_table(spec: &MultiTableSpec) -> MultiTableSite {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let schemas: Vec<Schema> = spec.tables.iter().map(|t| t.domain.schema()).collect();
    let mut pages = Vec::with_capacity(spec.pages);
    for page_idx in 0..spec.pages {
        let mut w = HtmlWriter::new();
        let mut regions = Vec::new();
        w.open("html");
        w.open("head")
            .element("title", &format!("{} Directory", spec.name))
            .close();
        w.open("body");
        w.element("h1", &spec.name);
        w.newline();
        if spec.nav_links > 0 {
            let start = w.snapshot_len();
            render_nav(&mut w, &NAV_LABELS, spec.nav_links);
            regions.push(RegionSpan {
                start,
                end: w.snapshot_len(),
                label: RegionLabel::Nav,
                table: None,
            });
        }
        let mut details = Vec::with_capacity(spec.tables.len());
        let mut tables = Vec::with_capacity(spec.tables.len());
        for (t, (table, schema)) in spec.tables.iter().zip(&schemas).enumerate() {
            w.element("h3", &format!("{} Listings", schema.domain));
            w.newline();
            let views: Vec<RecordView> = (0..table.records)
                .map(|_| plain_view(&table.domain.generate(&mut rng)))
                .collect();
            let start = w.snapshot_len();
            let spans = render_table_block(&mut w, schema, &views, page_idx, t);
            regions.push(RegionSpan {
                start,
                end: w.snapshot_len(),
                label: RegionLabel::Table,
                table: Some(t),
            });
            tables.push(GroundTruth { records: spans });
            details.push(
                views
                    .iter()
                    .map(|v| render_detail_page(&spec.name, schema, v))
                    .collect(),
            );
            if spec.ad_block && t + 1 < spec.tables.len() {
                let start = w.snapshot_len();
                w.open("div");
                w.open("b").text("Todays Special Offer").close();
                w.void("br");
                w.text("Save big on selected listings this week only ");
                w.open_attrs("a", "href=\"/ads/0\"")
                    .text("Click Here")
                    .close();
                w.close(); // div
                w.newline();
                regions.push(RegionSpan {
                    start,
                    end: w.snapshot_len(),
                    label: RegionLabel::Ad,
                    table: None,
                });
            }
        }
        if spec.footer_links > 0 {
            let start = w.snapshot_len();
            render_nav(&mut w, &FOOTER_LABELS, spec.footer_links);
            regions.push(RegionSpan {
                start,
                end: w.snapshot_len(),
                label: RegionLabel::Footer,
                table: None,
            });
        }
        w.element(
            "p",
            &format!("Copyright 2004 {} Inc. All rights reserved.", spec.name),
        );
        w.close(); // body
        w.close(); // html
        pages.push(MultiTablePage {
            list_html: w.finish(),
            details,
            regions,
            tables,
        });
    }
    MultiTableSite {
        spec: spec.clone(),
        pages,
    }
}

// ---- nested-record pages ----------------------------------------------

/// The specification of a site whose records nest repeating sub-records.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct NestedSpec {
    /// Site name (appears in page chrome).
    pub name: String,
    /// The parent records' information domain.
    pub parent_domain: Domain,
    /// The sub-records' information domain.
    pub sub_domain: Domain,
    /// Parent records on each sample list page.
    pub parents_per_page: Vec<usize>,
    /// Sub-records nested inside each parent.
    pub subs_per_parent: usize,
    /// Master random seed.
    pub seed: u64,
}

/// Ground truth for one parent record and its nested sub-records.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct NestedParentTruth {
    /// The parent record's byte span (covering its nested table).
    pub span: RecordSpan,
    /// The sub-record spans, absolute byte offsets inside `span`.
    pub subs: Vec<RecordSpan>,
}

/// Ground truth for one nested list page.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize)]
pub struct NestedTruth {
    /// One entry per parent record, in row order.
    pub parents: Vec<NestedParentTruth>,
}

impl NestedTruth {
    /// The parent-record spans, for the flat parent-level pass.
    pub fn parent_spans(&self) -> Vec<std::ops::Range<usize>> {
        self.parents
            .iter()
            .map(|p| p.span.start..p.span.end)
            .collect()
    }
}

/// One generated nested list page.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct NestedPage {
    /// The list-page HTML.
    pub list_html: String,
    /// Parent detail pages, one per parent record.
    pub parent_details: Vec<String>,
    /// Sub-record detail pages: `sub_details[i][j]` belongs to parent
    /// `i`'s sub-record `r_{j+1}`.
    pub sub_details: Vec<Vec<String>>,
    /// Parent and sub-record ground truth.
    pub truth: NestedTruth,
}

/// A fully generated nested site.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct NestedSite {
    /// The spec this site was generated from.
    pub spec: NestedSpec,
    /// The sample list pages.
    pub pages: Vec<NestedPage>,
}

impl NestedSite {
    /// All list-page HTML, for template induction.
    pub fn list_htmls(&self) -> Vec<&str> {
        self.pages.iter().map(|p| p.list_html.as_str()).collect()
    }

    /// Flattens the site into a [`GeneratedSite`] (parent spans as the
    /// record truth, parent detail pages as the detail pages) for the
    /// chaos layer and flat-truth tooling. Sub-record truth is not
    /// representable there and is dropped.
    pub fn as_generated_site(&self) -> GeneratedSite {
        let spec = flat_spec(
            &self.spec.name,
            self.pages.iter().map(|p| p.truth.parents.len()),
            self.spec.seed,
        );
        let pages = self
            .pages
            .iter()
            .map(|p| GeneratedPage {
                list_html: p.list_html.clone(),
                detail_html: p.parent_details.clone(),
                truth: GroundTruth {
                    records: p.truth.parents.iter().map(|t| t.span.clone()).collect(),
                },
            })
            .collect();
        GeneratedSite { spec, pages }
    }
}

/// Generates a nested site from its spec. Deterministic in the seed.
pub fn generate_nested(spec: &NestedSpec) -> NestedSite {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let parent_schema = spec.parent_domain.schema();
    let sub_schema = spec.sub_domain.schema();
    let mut pages = Vec::with_capacity(spec.parents_per_page.len());
    for (page_idx, &parents) in spec.parents_per_page.iter().enumerate() {
        let mut w = HtmlWriter::new();
        w.open("html");
        w.open("head")
            .element("title", &format!("{} Search Results", spec.name))
            .close();
        w.open("body");
        w.element("h1", &spec.name);
        w.newline();
        w.element("h2", &format!("{parents} Matching Listings"));
        w.newline();
        let mut truth = NestedTruth::default();
        let mut parent_details = Vec::with_capacity(parents);
        let mut sub_details = Vec::with_capacity(parents);
        w.open("div");
        w.newline();
        for i in 0..parents {
            let parent = plain_view(&spec.parent_domain.generate(&mut rng));
            let subs: Vec<RecordView> = (0..spec.subs_per_parent)
                .map(|_| plain_view(&spec.sub_domain.generate(&mut rng)))
                .collect();
            let p_start = w.snapshot_len();
            w.open("p");
            for (fi, lv) in parent.list_values.iter().enumerate() {
                let Some(v) = lv else { continue };
                if fi == 0 {
                    w.open_attrs("a", &format!("href=\"/detail/{page_idx}/{i}\""))
                        .open("b")
                        .text(v)
                        .close()
                        .close();
                } else {
                    w.void("br");
                    w.text(v);
                }
            }
            w.close(); // p
            w.newline();
            // The nested sub-record table: the repeating structure every
            // parent stamps out, which is what the recursive pass
            // re-induces a template from.
            w.open_attrs("table", "cellspacing=0");
            w.newline();
            w.open("tr");
            for f in &sub_schema.fields {
                w.element("th", f.label);
            }
            w.close();
            w.newline();
            let mut sub_spans = Vec::with_capacity(subs.len());
            for (j, sub) in subs.iter().enumerate() {
                let s_start = w.snapshot_len();
                w.open("tr");
                for (fi, lv) in sub.list_values.iter().enumerate() {
                    w.open("td");
                    match lv {
                        Some(v) if fi == 0 => {
                            w.open_attrs("a", &format!("href=\"/sub/{page_idx}/{i}/{j}\""))
                                .text(v)
                                .close();
                        }
                        Some(v) => {
                            w.text(v);
                        }
                        None => {
                            w.raw("&nbsp;");
                        }
                    }
                    w.close();
                }
                w.close();
                sub_spans.push(RecordSpan {
                    start: s_start,
                    end: w.snapshot_len(),
                    values: sub.list_values.iter().flatten().cloned().collect(),
                });
                w.newline();
            }
            w.close(); // table
            let p_end = w.snapshot_len();
            w.void("hr");
            w.newline();
            truth.parents.push(NestedParentTruth {
                span: RecordSpan {
                    start: p_start,
                    end: p_end,
                    values: parent.list_values.iter().flatten().cloned().collect(),
                },
                subs: sub_spans,
            });
            parent_details.push(render_detail_page(&spec.name, &parent_schema, &parent));
            sub_details.push(
                subs.iter()
                    .map(|s| render_detail_page(&spec.name, &sub_schema, s))
                    .collect(),
            );
        }
        w.close(); // div
        w.element(
            "p",
            &format!("Copyright 2004 {} Inc. All rights reserved.", spec.name),
        );
        w.close(); // body
        w.close(); // html
        pages.push(NestedPage {
            list_html: w.finish(),
            parent_details,
            sub_details,
            truth,
        });
    }
    NestedSite {
        spec: spec.clone(),
        pages,
    }
}

// ---- the scenario cohorts ---------------------------------------------

/// The multi-table detection cohort: a spread of table counts, noise
/// mixes and domains. `seed` perturbs every site's data.
pub fn detect_cohort(seed: u64) -> Vec<MultiTableSpec> {
    let table = |domain, records| TableSpec { domain, records };
    vec![
        MultiTableSpec {
            name: "Midstate Directory".into(),
            tables: vec![table(Domain::WhitePages, 6), table(Domain::PropertyTax, 5)],
            nav_links: 5,
            ad_block: true,
            footer_links: 4,
            pages: 2,
            seed: seed ^ 0xD1,
        },
        MultiTableSpec {
            name: "Tri County Portal".into(),
            tables: vec![
                table(Domain::PropertyTax, 4),
                table(Domain::Corrections, 6),
                table(Domain::WhitePages, 5),
            ],
            nav_links: 6,
            ad_block: false,
            footer_links: 3,
            pages: 2,
            seed: seed ^ 0xD2,
        },
        MultiTableSpec {
            name: "Book And Author Hub".into(),
            tables: vec![table(Domain::Books, 7), table(Domain::Books, 4)],
            nav_links: 0,
            ad_block: true,
            footer_links: 4,
            pages: 2,
            seed: seed ^ 0xD3,
        },
        MultiTableSpec {
            name: "Single Listing Gazette".into(),
            tables: vec![table(Domain::WhitePages, 8)],
            nav_links: 6,
            ad_block: false,
            footer_links: 4,
            pages: 2,
            seed: seed ^ 0xD4,
        },
    ]
}

/// The nested-record cohort for the recursive-pass benchmark.
pub fn nested_cohort(seed: u64) -> Vec<NestedSpec> {
    vec![
        NestedSpec {
            name: "Edition Finder".into(),
            parent_domain: Domain::Books,
            sub_domain: Domain::WhitePages,
            parents_per_page: vec![4, 3],
            subs_per_parent: 3,
            seed: seed ^ 0xE1,
        },
        NestedSpec {
            name: "County Parcel Register".into(),
            parent_domain: Domain::WhitePages,
            sub_domain: Domain::PropertyTax,
            parents_per_page: vec![3, 4],
            subs_per_parent: 4,
            seed: seed ^ 0xE2,
        },
        NestedSpec {
            name: "Facility Roster".into(),
            parent_domain: Domain::PropertyTax,
            sub_domain: Domain::Corrections,
            parents_per_page: vec![4, 4],
            subs_per_parent: 3,
            seed: seed ^ 0xE3,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mt_spec() -> MultiTableSpec {
        detect_cohort(7).remove(0)
    }

    fn n_spec() -> NestedSpec {
        nested_cohort(7).remove(0)
    }

    #[test]
    fn multi_table_is_deterministic() {
        assert_eq!(
            generate_multi_table(&mt_spec()),
            generate_multi_table(&mt_spec())
        );
    }

    #[test]
    fn multi_table_regions_are_ordered_and_disjoint() {
        let site = generate_multi_table(&mt_spec());
        for page in &site.pages {
            assert!(!page.regions.is_empty());
            for w2 in page.regions.windows(2) {
                assert!(w2[0].end <= w2[1].start);
            }
            for r in &page.regions {
                assert!(r.end <= page.list_html.len());
            }
        }
    }

    #[test]
    fn multi_table_record_spans_sit_inside_their_region() {
        let site = generate_multi_table(&mt_spec());
        let page = &site.pages[0];
        for (t, truth) in page.tables.iter().enumerate() {
            let region = page
                .regions
                .iter()
                .find(|r| r.table == Some(t))
                .expect("table region");
            for span in &truth.records {
                assert!(span.start >= region.start && span.end <= region.end);
                let row = &page.list_html[span.start..span.end];
                for v in &span.values {
                    let escaped = tableseg_html::entities::encode_text(v);
                    assert!(row.contains(&escaped), "{row:?} missing {v:?}");
                }
            }
        }
    }

    #[test]
    fn multi_table_details_align_with_records() {
        let site = generate_multi_table(&mt_spec());
        let page = &site.pages[0];
        assert_eq!(page.details.len(), page.tables.len());
        for (truth, details) in page.tables.iter().zip(&page.details) {
            assert_eq!(truth.len(), details.len());
            for (span, detail) in truth.records.iter().zip(details) {
                assert!(detail.contains(&span.values[0]));
            }
        }
    }

    #[test]
    fn nested_is_deterministic() {
        assert_eq!(generate_nested(&n_spec()), generate_nested(&n_spec()));
    }

    #[test]
    fn nested_truth_nests_properly() {
        let site = generate_nested(&n_spec());
        for page in &site.pages {
            for parent in &page.truth.parents {
                assert!(parent.span.end <= page.list_html.len());
                for (j, sub) in parent.subs.iter().enumerate() {
                    assert!(
                        sub.start >= parent.span.start && sub.end <= parent.span.end,
                        "sub {j} escapes its parent"
                    );
                }
                for w2 in parent.subs.windows(2) {
                    assert!(w2[0].end <= w2[1].start);
                }
            }
        }
    }

    #[test]
    fn nested_sub_details_contain_their_values() {
        let site = generate_nested(&n_spec());
        let page = &site.pages[0];
        for (parent, details) in page.truth.parents.iter().zip(&page.sub_details) {
            assert_eq!(parent.subs.len(), details.len());
            for (sub, detail) in parent.subs.iter().zip(details) {
                assert!(detail.contains(&sub.values[0]));
            }
        }
    }

    #[test]
    fn adapters_flatten_truth() {
        let mt = generate_multi_table(&mt_spec()).as_generated_site();
        let expected: usize = generate_multi_table(&mt_spec()).pages[0]
            .tables
            .iter()
            .map(GroundTruth::len)
            .sum();
        assert_eq!(mt.pages[0].truth.len(), expected);
        assert_eq!(mt.pages[0].detail_html.len(), expected);

        let n = generate_nested(&n_spec()).as_generated_site();
        let src = generate_nested(&n_spec());
        assert_eq!(n.pages[0].truth.len(), src.pages[0].truth.parents.len());
    }
}
