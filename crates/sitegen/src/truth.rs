//! Ground truth: the byte span of every record row in a generated list
//! page.
//!
//! The paper's authors "manually checked the results of automatic
//! segmentation" (Section 6.2). The simulator knows exactly where each
//! record was written, so the evaluation can be mechanical: an extract
//! belongs to record `j` iff its source offset falls inside `spans[j]`.

use serde::{Deserialize, Serialize};

/// The byte range `[start, end)` of one record row in a list page's HTML,
/// plus the values it displays (for reports and debugging).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordSpan {
    /// Start byte offset (inclusive).
    pub start: usize,
    /// End byte offset (exclusive).
    pub end: usize,
    /// The field values rendered inside this row, in order.
    pub values: Vec<String>,
}

impl RecordSpan {
    /// Returns `true` if `offset` falls inside this record's row.
    pub fn contains(&self, offset: usize) -> bool {
        (self.start..self.end).contains(&offset)
    }
}

/// Ground truth for one list page.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct GroundTruth {
    /// One span per record, in row (= detail page) order.
    pub records: Vec<RecordSpan>,
}

impl GroundTruth {
    /// The record index containing a byte offset, if any.
    pub fn record_at(&self, offset: usize) -> Option<usize> {
        self.records.iter().position(|r| r.contains(offset))
    }

    /// Number of records on the page.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the page has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> GroundTruth {
        GroundTruth {
            records: vec![
                RecordSpan {
                    start: 100,
                    end: 200,
                    values: vec!["a".into()],
                },
                RecordSpan {
                    start: 200,
                    end: 320,
                    values: vec!["b".into()],
                },
            ],
        }
    }

    #[test]
    fn record_lookup() {
        let t = truth();
        assert_eq!(t.record_at(100), Some(0));
        assert_eq!(t.record_at(199), Some(0));
        assert_eq!(t.record_at(200), Some(1));
        assert_eq!(t.record_at(319), Some(1));
        assert_eq!(t.record_at(320), None);
        assert_eq!(t.record_at(0), None);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn spans_do_not_need_to_be_adjacent() {
        let t = GroundTruth {
            records: vec![RecordSpan {
                start: 10,
                end: 20,
                values: vec![],
            }],
        };
        assert_eq!(t.record_at(25), None);
    }
}
