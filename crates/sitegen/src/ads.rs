//! Extraneous linked pages: advertisements and promotions.
//!
//! "there are often other links from the list page that point to
//! advertisements and other extraneous data" (Section 6.1). These pages do
//! not share the detail-page template — which is exactly what the
//! detail-page classifier the paper sketches (and `tableseg::detail_id`
//! implements) relies on.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::db;
use tableseg_html::writer::HtmlWriter;

/// Generates `count` advertisement pages, each with its own structure —
/// deliberately *not* template-generated, unlike detail pages.
pub fn ad_pages(count: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|i| ad_page(i, &mut rng)).collect()
}

fn ad_page(index: usize, rng: &mut StdRng) -> String {
    let mut w = HtmlWriter::new();
    w.open("html");
    w.open("body");
    match index % 3 {
        0 => {
            w.open_attrs("center", "");
            w.open_attrs("font", "size=7 color=red");
            w.text(&format!(
                "HUGE SALE {} PERCENT OFF EVERYTHING",
                rng.random_range(10..70)
            ));
            w.close();
            w.close();
            for _ in 0..rng.random_range(2..5) {
                w.element(
                    "p",
                    &format!(
                        "Call now {} and mention offer code {}",
                        db::phone(rng),
                        rng.random_range(1000..9999)
                    ),
                );
            }
        }
        1 => {
            w.open("div");
            for _ in 0..rng.random_range(3..7) {
                w.open("div");
                w.text(&format!(
                    "Win a trip to {} click here to enter today",
                    db::pick(rng, db::CITIES)
                ));
                w.close();
            }
            w.close();
        }
        _ => {
            w.open_attrs("table", "width=100%");
            w.open("tr");
            w.element("td", "Lowest prices guaranteed");
            w.element(
                "td",
                &format!("Deal of the day number {}", rng.random_range(1..99)),
            );
            w.close();
            w.close();
            w.open("blockquote");
            w.text("As seen on TV order before midnight tonight");
            w.close();
        }
    }
    w.close();
    w.close();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count() {
        let ads = ad_pages(4, 9);
        assert_eq!(ads.len(), 4);
        assert!(ads.iter().all(|a| a.len() > 50));
    }

    #[test]
    fn deterministic() {
        assert_eq!(ad_pages(3, 7), ad_pages(3, 7));
        assert_ne!(ad_pages(3, 7), ad_pages(3, 8));
    }

    #[test]
    fn structures_differ_between_ads() {
        let ads = ad_pages(3, 1);
        assert!(ads[0].contains("font"));
        assert!(ads[1].contains("Win a trip"));
        assert!(ads[2].contains("blockquote"));
    }
}
