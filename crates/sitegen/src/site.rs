//! Site generation: from a [`SiteSpec`] to list pages, detail pages and
//! ground truth.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use crate::domains::Domain;
pub use crate::layout::LayoutStyle;
use crate::layout::{render_detail_page, render_list_page};
use crate::quirks::{apply, Quirk};
use crate::truth::GroundTruth;

/// The specification of a simulated hidden-web site.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SiteSpec {
    /// Site name (appears in page chrome).
    pub name: String,
    /// Information domain.
    pub domain: Domain,
    /// List-page layout style.
    pub layout: LayoutStyle,
    /// Number of records on each sample list page (the paper uses two list
    /// pages per site).
    pub records_per_page: Vec<usize>,
    /// Data quirks to inject.
    pub quirks: Vec<Quirk>,
    /// Probability that an optional field is missing from a record.
    pub missing_field_prob: f64,
    /// Continue entry numbering across result pages (page 2 starts at
    /// `n+1` instead of `1`). The paper proposes exactly this as the fix
    /// for the numbered-entries template failure: "One method is to simply
    /// follow the 'Next' link ... The entry numbers of the next page will
    /// be different from others in the sample" (Section 6.3). Only
    /// meaningful for [`LayoutStyle::NumberedList`].
    pub continuous_numbering: bool,
    /// Number of leading records shared between consecutive list pages
    /// (overlapping query results). Shared records become part of the
    /// induced page template and break it — one of the template-failure
    /// modes of Section 6.3.
    pub overlap: usize,
    /// Master random seed.
    pub seed: u64,
}

impl SiteSpec {
    /// The same site with `pages` sample list pages: the per-page record
    /// counts cycle through the spec's existing `records_per_page`
    /// pattern. Multi-page induction benches and tests use this to scale
    /// a 2-page paper site to 10+ pages without changing its character.
    pub fn with_page_count(&self, pages: usize) -> SiteSpec {
        assert!(
            !self.records_per_page.is_empty(),
            "spec has no records_per_page pattern to cycle"
        );
        let mut spec = self.clone();
        spec.records_per_page = (0..pages)
            .map(|p| self.records_per_page[p % self.records_per_page.len()])
            .collect();
        spec
    }
}

/// One generated list page with its detail pages and ground truth.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GeneratedPage {
    /// List-page HTML.
    pub list_html: String,
    /// Detail-page HTML, one per record, in row order.
    pub detail_html: Vec<String>,
    /// Ground truth for the list page.
    pub truth: GroundTruth,
}

/// A fully generated site.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GeneratedSite {
    /// The spec this site was generated from.
    pub spec: SiteSpec,
    /// The sample list pages.
    pub pages: Vec<GeneratedPage>,
}

impl GeneratedSite {
    /// All list-page HTML, for template induction.
    pub fn list_htmls(&self) -> Vec<&str> {
        self.pages.iter().map(|p| p.list_html.as_str()).collect()
    }

    /// Exposes the site as a URL → HTML map, the way a crawler would see
    /// it: list pages under `/list/{p}` (chained by their "Next" links),
    /// detail pages under `/detail/{p}/{i}`, and `ad_count` advertisement
    /// pages under `/ads/{k}` (linked from every list page). The entry
    /// point is `/list/0`.
    pub fn site_map(&self, ad_count: usize) -> std::collections::HashMap<String, String> {
        let mut map = std::collections::HashMap::new();
        for (p, page) in self.pages.iter().enumerate() {
            map.insert(format!("/list/{p}"), page.list_html.clone());
            for (i, d) in page.detail_html.iter().enumerate() {
                map.insert(format!("/detail/{p}/{i}"), d.clone());
            }
        }
        for (k, ad) in crate::ads::ad_pages(ad_count, self.spec.seed ^ 0xAD5)
            .into_iter()
            .enumerate()
        {
            map.insert(format!("/ads/{k}"), ad);
        }
        map
    }
}

/// Generates a site from its spec. Deterministic in the seed.
pub fn generate(spec: &SiteSpec) -> GeneratedSite {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let schema = spec.domain.schema();
    let total: usize = spec.records_per_page.iter().sum();

    let mut pages = Vec::with_capacity(spec.records_per_page.len());
    let mut prev_records: Vec<crate::db::Record> = Vec::new();
    let mut number_offset = 0usize;
    for (page_idx, &n) in spec.records_per_page.iter().enumerate() {
        let mut records: Vec<crate::db::Record> = Vec::with_capacity(n);
        // Overlapping results: repeat the first records of the previous
        // page.
        if page_idx > 0 {
            for r in prev_records.iter().take(spec.overlap.min(n)) {
                records.push(r.clone());
            }
        }
        while records.len() < n {
            records.push(spec.domain.generate(&mut rng));
        }
        let views = apply(
            &spec.quirks,
            &schema,
            &mut records,
            spec.missing_field_prob,
            page_idx,
            &mut rng,
        );
        let promo_count = spec
            .quirks
            .iter()
            .find_map(|q| match q {
                Quirk::ListPagePromos { count } => Some(*count),
                _ => None,
            })
            .unwrap_or(0);
        let promos: Vec<String> = views
            .iter()
            .skip(1)
            .step_by(2)
            .take(promo_count)
            .filter_map(|v| v.list_values[0].clone())
            .collect();
        let query_echo = spec.quirks.iter().find_map(|q| match q {
            Quirk::QueryEcho { field } => {
                let fi = schema.field_index(field)?;
                // The most frequent value of the field on this page — the
                // value the "query" selected on.
                let mut counts: std::collections::HashMap<&str, usize> =
                    std::collections::HashMap::new();
                for v in &views {
                    if let Some(val) = &v.list_values[fi] {
                        *counts.entry(val.as_str()).or_default() += 1;
                    }
                }
                counts
                    .into_iter()
                    .max_by_key(|&(v, n)| (n, std::cmp::Reverse(v)))
                    .map(|(v, _)| v.to_owned())
            }
            _ => None,
        });
        let (list_html, truth) = render_list_page(
            &spec.name,
            spec.layout,
            &schema,
            &views,
            &promos,
            query_echo.as_deref(),
            page_idx,
            number_offset,
            total * 7,
        );
        if spec.continuous_numbering {
            number_offset += n;
        }
        let detail_html = views
            .iter()
            .map(|v| render_detail_page(&spec.name, &schema, v))
            .collect();
        pages.push(GeneratedPage {
            list_html,
            detail_html,
            truth,
        });
        prev_records = records;
    }

    GeneratedSite {
        spec: spec.clone(),
        pages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SiteSpec {
        SiteSpec {
            name: "Test County".into(),
            domain: Domain::PropertyTax,
            layout: LayoutStyle::GridTable,
            records_per_page: vec![6, 4],
            quirks: vec![],
            missing_field_prob: 0.1,
            continuous_numbering: false,
            overlap: 0,
            seed: 77,
        }
    }

    #[test]
    fn generates_requested_shape() {
        let site = generate(&spec());
        assert_eq!(site.pages.len(), 2);
        assert_eq!(site.pages[0].detail_html.len(), 6);
        assert_eq!(site.pages[1].detail_html.len(), 4);
        assert_eq!(site.pages[0].truth.len(), 6);
    }

    #[test]
    fn deterministic() {
        let a = generate(&spec());
        let b = generate(&spec());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&spec());
        let mut s = spec();
        s.seed = 78;
        let b = generate(&s);
        assert_ne!(a.pages[0].list_html, b.pages[0].list_html);
    }

    #[test]
    fn with_page_count_cycles_the_record_pattern() {
        let s = spec().with_page_count(5);
        assert_eq!(s.records_per_page, vec![6, 4, 6, 4, 6]);
        let site = generate(&s);
        assert_eq!(site.pages.len(), 5);
        // The record stream is drawn in the same order from the same
        // seed, so the first page's records match the unscaled site's
        // (chrome differs: the total-results line counts all pages).
        let base = generate(&spec());
        let ids = |s: &GeneratedSite, p: usize| {
            s.pages[p]
                .truth
                .records
                .iter()
                .map(|r| r.values[0].clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(ids(&site, 0), ids(&base, 0));
    }

    #[test]
    fn truth_spans_index_into_html() {
        let site = generate(&spec());
        for page in &site.pages {
            for span in &page.truth.records {
                assert!(span.end <= page.list_html.len());
                assert!(span.start < span.end);
            }
        }
    }

    #[test]
    fn detail_pages_contain_their_record_values() {
        let site = generate(&spec());
        let page = &site.pages[0];
        for (span, detail) in page.truth.records.iter().zip(&page.detail_html) {
            // The identifier (first value) must be on the detail page.
            assert!(detail.contains(&span.values[0]));
        }
    }

    #[test]
    fn overlap_repeats_records_across_pages() {
        let mut s = spec();
        s.overlap = 3;
        s.missing_field_prob = 0.0;
        let site = generate(&s);
        let first_page_ids: Vec<&String> = site.pages[0].truth.records[..3]
            .iter()
            .map(|r| &r.values[0])
            .collect();
        let second_page_ids: Vec<&String> = site.pages[1].truth.records[..3]
            .iter()
            .map(|r| &r.values[0])
            .collect();
        assert_eq!(first_page_ids, second_page_ids);
    }

    #[test]
    fn pages_share_template_but_not_data() {
        let site = generate(&spec());
        let p0 = &site.pages[0].list_html;
        let p1 = &site.pages[1].list_html;
        assert!(p0.contains("Test County"));
        assert!(p1.contains("Test County"));
        // Data differs.
        let id0 = &site.pages[0].truth.records[0].values[0];
        assert!(!p1.contains(id0));
    }
}
