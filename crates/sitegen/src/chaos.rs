//! Fault injection: deterministic, seeded corruption of generated sites.
//!
//! The simulator in [`crate::site`] emits well-formed sites; real
//! hidden-web servers do not. Detail links die (404s), proxies truncate
//! responses mid-tag, mixed encodings smuggle replacement characters into
//! values, CMS bugs duplicate rows, and template engines reorder
//! attributes between renders. AMBER (Furche et al., 2012) and the web
//! table surveys both report that noise tolerance, not clean-page
//! accuracy, decides whether automatic-supervision extraction is usable.
//!
//! This module turns a clean [`GeneratedSite`] into a damaged one under a
//! [`ChaosConfig`]: a set of independently toggleable [`FaultSpec`]s, each
//! a [`FaultKind`] with an injection probability, driven by a per-page RNG
//! derived from the config seed and the site seed. The same config and
//! site always produce the same damage; a config with every probability at
//! zero returns a byte-identical site — the differential tests rely on
//! both properties.
//!
//! Ground truth stays meaningful under damage: every byte edit remaps the
//! record spans of the page's [`GroundTruth`](crate::truth::GroundTruth),
//! and records whose rows are destroyed (truncated away, blanked) are
//! dropped from the truth rather than left pointing at bytes that no
//! longer exist. Accuracy-vs-fault-rate curves (the `chaossweep` bench)
//! are therefore measured against the truth of the *damaged* page.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::Serialize;

use crate::site::{GeneratedPage, GeneratedSite};
use crate::truth::RecordSpan;

/// One class of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FaultKind {
    /// The page is cut off mid-stream (a dropped connection or a proxy
    /// limit): the trailing half of the HTML disappears, usually leaving
    /// the last tag unclosed. Records truncated away leave the truth.
    TruncateHtml,
    /// Closing tags are deleted at random — the unclosed-element soup real
    /// table markup is famous for.
    UnclosedTags,
    /// A detail page is replaced by a 404 error page: the link rotted, the
    /// row's record evidence is gone, but the row itself remains.
    DropDetailPage,
    /// A record row is duplicated verbatim outside the truth — the
    /// duplicate competes with the original for detail-page matches.
    DuplicateRow,
    /// Random characters are replaced by U+FFFD — the visible residue of a
    /// server mixing encodings.
    EncodingDamage,
    /// The attributes of a multi-attribute tag are reordered — a template
    /// engine emitting attributes from an unordered map, which perturbs
    /// tag-exact template induction.
    AttributeShuffle,
    /// The whole page is served empty (an error page with a 200 status).
    /// On a list page this also empties its ground truth.
    BlankPage,
}

impl FaultKind {
    /// Every fault kind, in a fixed canonical order.
    pub const ALL: [FaultKind; 7] = [
        FaultKind::TruncateHtml,
        FaultKind::UnclosedTags,
        FaultKind::DropDetailPage,
        FaultKind::DuplicateRow,
        FaultKind::EncodingDamage,
        FaultKind::AttributeShuffle,
        FaultKind::BlankPage,
    ];

    /// Short stable label for reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::TruncateHtml => "truncate",
            FaultKind::UnclosedTags => "unclosed_tags",
            FaultKind::DropDetailPage => "detail_404",
            FaultKind::DuplicateRow => "duplicate_row",
            FaultKind::EncodingDamage => "encoding",
            FaultKind::AttributeShuffle => "attr_shuffle",
            FaultKind::BlankPage => "blank_page",
        }
    }

    /// Whether this fault can hit a list page.
    fn applies_to_list(self) -> bool {
        !matches!(self, FaultKind::DropDetailPage)
    }

    /// Whether this fault can hit a detail page.
    fn applies_to_detail(self) -> bool {
        !matches!(self, FaultKind::DuplicateRow)
    }

    fn index(self) -> u64 {
        FaultKind::ALL
            .iter()
            .position(|&k| k == self)
            .unwrap_or_default() as u64
    }
}

/// One independently toggleable fault: a kind and the probability that it
/// fires on any given (applicable) page.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FaultSpec {
    /// The fault class.
    pub kind: FaultKind,
    /// Per-page injection probability in `[0, 1]`.
    pub probability: f64,
}

/// A fault-injection configuration: which faults, how often, and the
/// master chaos seed (independent of the site seed, so the same damage
/// pattern can be replayed over different sites and vice versa).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ChaosConfig {
    /// The faults to inject, applied per page in this order.
    pub faults: Vec<FaultSpec>,
    /// Master chaos seed.
    pub seed: u64,
}

impl ChaosConfig {
    /// No faults at all: [`apply_chaos`] returns a byte-identical site.
    pub fn off(seed: u64) -> ChaosConfig {
        ChaosConfig {
            faults: Vec::new(),
            seed,
        }
    }

    /// Every fault kind at the same probability `p`.
    pub fn uniform(p: f64, seed: u64) -> ChaosConfig {
        ChaosConfig {
            faults: FaultKind::ALL
                .iter()
                .map(|&kind| FaultSpec {
                    kind,
                    probability: p,
                })
                .collect(),
            seed,
        }
    }

    /// A single fault kind at probability `p`.
    pub fn only(kind: FaultKind, p: f64, seed: u64) -> ChaosConfig {
        ChaosConfig {
            faults: vec![FaultSpec {
                kind,
                probability: p,
            }],
            seed,
        }
    }

    /// `true` when no fault can ever fire (no specs, or all probabilities
    /// at zero or below).
    pub fn is_noop(&self) -> bool {
        self.faults.iter().all(|f| f.probability <= 0.0)
    }
}

/// One fault that actually fired.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct InjectedFault {
    /// The fault class.
    pub kind: FaultKind,
    /// Where it hit: `list/{p}` or `detail/{p}/{i}`.
    pub location: String,
}

/// Everything [`apply_chaos`] injected, in deterministic page order.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct ChaosLog {
    /// The injected faults.
    pub injected: Vec<InjectedFault>,
}

impl ChaosLog {
    /// Number of injected faults.
    pub fn len(&self) -> usize {
        self.injected.len()
    }

    /// `true` if nothing fired.
    pub fn is_empty(&self) -> bool {
        self.injected.is_empty()
    }

    /// Fault counts by kind, in [`FaultKind::ALL`] order, zero-count kinds
    /// included (reports want a stable axis).
    pub fn counts(&self) -> Vec<(FaultKind, usize)> {
        FaultKind::ALL
            .iter()
            .map(|&kind| {
                let n = self.injected.iter().filter(|f| f.kind == kind).count();
                (kind, n)
            })
            .collect()
    }
}

/// Applies a chaos configuration to a generated site, returning the
/// damaged site and the log of every fault that fired. Deterministic in
/// `(cfg.seed, site.spec.seed)`; a no-op config returns a byte-identical
/// clone.
pub fn apply_chaos(site: &GeneratedSite, cfg: &ChaosConfig) -> (GeneratedSite, ChaosLog) {
    let mut log = ChaosLog::default();
    let mut pages = Vec::with_capacity(site.pages.len());
    for (p, page) in site.pages.iter().enumerate() {
        let mut list_html = page.list_html.clone();
        let mut spans = page.truth.records.clone();
        for spec in &cfg.faults {
            if !spec.kind.applies_to_list() {
                continue;
            }
            let mut rng = page_rng(cfg, site, (p as u64) << 2, spec.kind);
            if rng.random_bool(spec.probability) {
                apply_fault(spec.kind, &mut list_html, Some(&mut spans), &mut rng);
                log.injected.push(InjectedFault {
                    kind: spec.kind,
                    location: format!("list/{p}"),
                });
            }
        }
        let detail_html: Vec<String> = page
            .detail_html
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let mut html = d.clone();
                for spec in &cfg.faults {
                    if !spec.kind.applies_to_detail() {
                        continue;
                    }
                    let tag = (((p as u64) << 24) | (i as u64 + 1)) << 2 | 1;
                    let mut rng = page_rng(cfg, site, tag, spec.kind);
                    if rng.random_bool(spec.probability) {
                        apply_fault(spec.kind, &mut html, None, &mut rng);
                        log.injected.push(InjectedFault {
                            kind: spec.kind,
                            location: format!("detail/{p}/{i}"),
                        });
                    }
                }
                html
            })
            .collect();
        let mut truth = page.truth.clone();
        truth.records = spans;
        pages.push(GeneratedPage {
            list_html,
            detail_html,
            truth,
        });
    }
    (
        GeneratedSite {
            spec: site.spec.clone(),
            pages,
        },
        log,
    )
}

/// Generates a site and applies a chaos configuration in one step.
pub fn generate_chaotic(
    spec: &crate::site::SiteSpec,
    cfg: &ChaosConfig,
) -> (GeneratedSite, ChaosLog) {
    apply_chaos(&crate::site::generate(spec), cfg)
}

/// A deterministic RNG for one `(page, fault-kind)` cell, independent of
/// the order pages are visited in: every cell seeds from a hash of the
/// chaos seed, the site seed, a page tag and the fault index.
fn page_rng(cfg: &ChaosConfig, site: &GeneratedSite, page_tag: u64, kind: FaultKind) -> StdRng {
    let mut h = cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(23)
        ^ site.spec.seed.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    h ^= page_tag.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    h ^= kind.index().wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    StdRng::seed_from_u64(h)
}

/// Applies one fault operator to a page. `spans` is the page's truth
/// (list pages only); operators keep it consistent with the edited HTML.
fn apply_fault(
    kind: FaultKind,
    html: &mut String,
    spans: Option<&mut Vec<RecordSpan>>,
    rng: &mut StdRng,
) {
    match kind {
        FaultKind::TruncateHtml => truncate_html(html, spans, rng),
        FaultKind::UnclosedTags => drop_closing_tags(html, spans, rng),
        FaultKind::DropDetailPage => {
            *html = NOT_FOUND_PAGE.to_owned();
        }
        FaultKind::DuplicateRow => duplicate_row(html, spans, rng),
        FaultKind::EncodingDamage => encoding_damage(html, spans, rng),
        FaultKind::AttributeShuffle => shuffle_attributes(html, spans, rng),
        FaultKind::BlankPage => {
            html.clear();
            if let Some(spans) = spans {
                spans.clear();
            }
        }
    }
}

/// The body served for a rotted detail link.
const NOT_FOUND_PAGE: &str = "<html><head><title>404 Not Found</title></head>\
     <body><h1>Not Found</h1><p>The requested document was not found on this \
     server.</p></body></html>";

/// Cuts the page at a random char boundary in its second half. Truth
/// records not fully inside the surviving prefix are dropped: their rows
/// are damaged goods, not ground truth.
fn truncate_html(html: &mut String, spans: Option<&mut Vec<RecordSpan>>, rng: &mut StdRng) {
    if html.len() < 2 {
        return;
    }
    let mut cut = rng.random_range(html.len() / 2..html.len());
    while cut < html.len() && !html.is_char_boundary(cut) {
        cut += 1;
    }
    html.truncate(cut);
    if let Some(spans) = spans {
        spans.retain(|s| s.end <= cut);
    }
}

/// Deletes a few closing tags, remapping truth spans through each edit.
fn drop_closing_tags(html: &mut String, mut spans: Option<&mut Vec<RecordSpan>>, rng: &mut StdRng) {
    // Collect closing-tag ranges first, then delete a random subset in
    // descending position order so earlier ranges stay valid.
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    let bytes = html.as_bytes();
    let mut i = 0;
    while i + 1 < bytes.len() {
        if bytes[i] == b'<' && bytes[i + 1] == b'/' {
            if let Some(end) = html[i..].find('>') {
                ranges.push((i, i + end + 1));
                i += end + 1;
                continue;
            }
        }
        i += 1;
    }
    if ranges.is_empty() {
        return;
    }
    let victims = 1 + ranges.len() / 8;
    let mut picked: Vec<usize> = (0..victims)
        .map(|_| rng.random_range(0..ranges.len()))
        .collect();
    picked.sort_unstable();
    picked.dedup();
    for &k in picked.iter().rev() {
        let (s, e) = ranges[k];
        html.replace_range(s..e, "");
        if let Some(spans) = spans.as_deref_mut() {
            remap_spans(spans, s, e, 0);
        }
    }
}

/// Duplicates one truth record's row bytes immediately after the row. The
/// copy is *not* added to the truth — it is noise that competes with the
/// original for detail-page matches. Without truth spans (detail pages)
/// this is a no-op.
fn duplicate_row(html: &mut String, spans: Option<&mut Vec<RecordSpan>>, rng: &mut StdRng) {
    let Some(spans) = spans else { return };
    if spans.is_empty() {
        return;
    }
    let k = rng.random_range(0..spans.len());
    let (s, e) = (spans[k].start, spans[k].end);
    if e > html.len() || s >= e {
        return;
    }
    let row = html[s..e].to_owned();
    html.insert_str(e, &row);
    remap_spans(spans, e, e, row.len());
}

/// Replaces a few characters with U+FFFD, remapping spans through each
/// edit. Only characters outside tags are hit (damage inside a tag name is
/// what [`FaultKind::TruncateHtml`] and unclosed tags already cover).
fn encoding_damage(html: &mut String, mut spans: Option<&mut Vec<RecordSpan>>, rng: &mut StdRng) {
    if html.is_empty() {
        return;
    }
    let hits = 1 + html.len() / 800;
    let mut positions: Vec<usize> = Vec::new();
    for _ in 0..hits {
        let mut p = rng.random_range(0..html.len());
        while p < html.len() && !html.is_char_boundary(p) {
            p += 1;
        }
        if p < html.len() {
            positions.push(p);
        }
    }
    positions.sort_unstable();
    positions.dedup();
    for &p in positions.iter().rev() {
        let Some(ch) = html[p..].chars().next() else {
            continue;
        };
        if ch == '<' || ch == '>' {
            continue;
        }
        let end = p + ch.len_utf8();
        html.replace_range(p..end, "\u{FFFD}");
        if let Some(spans) = spans.as_deref_mut() {
            remap_spans(spans, p, end, '\u{FFFD}'.len_utf8());
        }
    }
}

/// Reverses the attribute order of one randomly chosen multi-attribute
/// tag. Attribute values in generated pages never contain spaces, so
/// splitting on whitespace is exact; on foreign pages a quoted space would
/// merely make the shuffle a different (still well-formed) corruption.
fn shuffle_attributes(html: &mut String, spans: Option<&mut Vec<RecordSpan>>, rng: &mut StdRng) {
    // Find tags of the form `<name attr1 attr2 ...>` with ≥ 2 attributes.
    let mut candidates: Vec<(usize, usize)> = Vec::new();
    let mut at = 0;
    while let Some(open) = html[at..].find('<') {
        let start = at + open;
        let Some(close) = html[start..].find('>') else {
            break;
        };
        let end = start + close + 1;
        let inner = &html[start + 1..end - 1];
        if !inner.starts_with('/') && inner.split_whitespace().count() >= 3 {
            candidates.push((start, end));
        }
        at = end;
    }
    if candidates.is_empty() {
        return;
    }
    let (s, e) = candidates[rng.random_range(0..candidates.len())];
    let inner = &html[s + 1..e - 1];
    let mut parts: Vec<&str> = inner.split_whitespace().collect();
    parts[1..].reverse();
    let shuffled = format!("<{}>", parts.join(" "));
    let old_len = e - s;
    let new_len = shuffled.len();
    html.replace_range(s..e, &shuffled);
    if let Some(spans) = spans {
        remap_spans(spans, s, s + old_len, new_len);
    }
}

/// Remaps record spans through one edit that replaced `[start, end)` with
/// `new_len` bytes. Monotone: positions before the edit are unchanged,
/// positions after shift by the length delta, positions inside clamp into
/// the replacement. Spans that collapse to nothing are dropped.
fn remap_spans(spans: &mut Vec<RecordSpan>, start: usize, end: usize, new_len: usize) {
    let map = |p: usize| -> usize {
        if p <= start {
            p
        } else if p >= end {
            p - (end - start) + new_len
        } else {
            start + (p - start).min(new_len)
        }
    };
    for s in spans.iter_mut() {
        s.start = map(s.start);
        s.end = map(s.end);
    }
    spans.retain(|s| s.start < s.end);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::Domain;
    use crate::site::{generate, LayoutStyle, SiteSpec};

    fn spec() -> SiteSpec {
        SiteSpec {
            name: "Chaos County".into(),
            domain: Domain::PropertyTax,
            layout: LayoutStyle::GridTable,
            records_per_page: vec![8, 6],
            quirks: vec![],
            missing_field_prob: 0.1,
            continuous_numbering: false,
            overlap: 0,
            seed: 0xC4405,
        }
    }

    #[test]
    fn noop_config_is_byte_identical() {
        let site = generate(&spec());
        for cfg in [ChaosConfig::off(9), ChaosConfig::uniform(0.0, 9)] {
            assert!(cfg.is_noop());
            let (out, log) = apply_chaos(&site, &cfg);
            assert!(log.is_empty());
            assert_eq!(out, site);
        }
    }

    #[test]
    fn deterministic_in_the_seeds() {
        let site = generate(&spec());
        let cfg = ChaosConfig::uniform(0.4, 77);
        let (a, la) = apply_chaos(&site, &cfg);
        let (b, lb) = apply_chaos(&site, &cfg);
        assert_eq!(a, b);
        assert_eq!(la, lb);
        let (c, _) = apply_chaos(&site, &ChaosConfig::uniform(0.4, 78));
        assert_ne!(a, c, "different chaos seeds must damage differently");
    }

    #[test]
    fn every_fault_kind_fires_and_mutates_at_p1() {
        let site = generate(&spec());
        for kind in FaultKind::ALL {
            let cfg = ChaosConfig::only(kind, 1.0, 3);
            let (out, log) = apply_chaos(&site, &cfg);
            assert!(!log.is_empty(), "{kind:?} never fired");
            assert!(log.injected.iter().all(|f| f.kind == kind));
            assert_ne!(out, site, "{kind:?} fired but changed nothing");
        }
    }

    #[test]
    fn truth_spans_stay_inside_damaged_html() {
        let site = generate(&spec());
        for seed in 0..20u64 {
            let (out, _) = apply_chaos(&site, &ChaosConfig::uniform(0.6, seed));
            for page in &out.pages {
                for span in &page.truth.records {
                    assert!(span.start < span.end, "{span:?}");
                    assert!(span.end <= page.list_html.len(), "{span:?}");
                }
            }
        }
    }

    #[test]
    fn duplicate_row_preserves_surviving_truth_bytes() {
        let site = generate(&spec());
        let cfg = ChaosConfig::only(FaultKind::DuplicateRow, 1.0, 5);
        let (out, log) = apply_chaos(&site, &cfg);
        assert!(!log.is_empty());
        for (clean, dirty) in site.pages.iter().zip(&out.pages) {
            assert_eq!(clean.truth.len(), dirty.truth.len());
            for (cs, ds) in clean.truth.records.iter().zip(&dirty.truth.records) {
                assert_eq!(
                    &clean.list_html[cs.start..cs.end],
                    &dirty.list_html[ds.start..ds.end],
                    "remapped span must hold the same row bytes"
                );
            }
        }
    }

    #[test]
    fn detail_404_replaces_detail_pages_only() {
        let site = generate(&spec());
        let cfg = ChaosConfig::only(FaultKind::DropDetailPage, 1.0, 5);
        let (out, _) = apply_chaos(&site, &cfg);
        for (clean, dirty) in site.pages.iter().zip(&out.pages) {
            assert_eq!(clean.list_html, dirty.list_html);
            assert!(dirty.detail_html.iter().all(|d| d.contains("404")));
        }
    }

    #[test]
    fn blank_page_empties_truth() {
        let site = generate(&spec());
        let cfg = ChaosConfig::only(FaultKind::BlankPage, 1.0, 5);
        let (out, _) = apply_chaos(&site, &cfg);
        for page in &out.pages {
            assert!(page.list_html.is_empty());
            assert!(page.truth.is_empty());
        }
    }

    #[test]
    fn counts_cover_all_kinds() {
        let site = generate(&spec());
        let (_, log) = apply_chaos(&site, &ChaosConfig::uniform(0.5, 11));
        let counts = log.counts();
        assert_eq!(counts.len(), FaultKind::ALL.len());
        let total: usize = counts.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, log.len());
    }
}
