//! The four information domains of the paper's evaluation (Section 6.1):
//! white pages, book sellers, property tax, and corrections.

pub mod books;
pub mod corrections;
pub mod propertytax;
pub mod whitepages;

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::db::{Record, Schema};

/// The information domain of a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Domain {
    /// White pages: name, address, city/state, zip, phone.
    WhitePages,
    /// Book sellers: title, authors, publisher, year, price.
    Books,
    /// Property tax: parcel id, owner, address, assessed value, tax.
    PropertyTax,
    /// Corrections: inmate id, name, status, facility, admission date.
    Corrections,
}

impl Domain {
    /// The schema of this domain.
    pub fn schema(self) -> Schema {
        match self {
            Domain::WhitePages => whitepages::schema(),
            Domain::Books => books::schema(),
            Domain::PropertyTax => propertytax::schema(),
            Domain::Corrections => corrections::schema(),
        }
    }

    /// Generates one random record of this domain.
    pub fn generate(self, rng: &mut StdRng) -> Record {
        match self {
            Domain::WhitePages => whitepages::generate(rng),
            Domain::Books => books::generate(rng),
            Domain::PropertyTax => propertytax::generate(rng),
            Domain::Corrections => corrections::generate(rng),
        }
    }

    /// All domains, for exhaustive tests.
    pub const ALL: [Domain; 4] = [
        Domain::WhitePages,
        Domain::Books,
        Domain::PropertyTax,
        Domain::Corrections,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn every_domain_generates_schema_shaped_records() {
        let mut rng = StdRng::seed_from_u64(7);
        for d in Domain::ALL {
            let schema = d.schema();
            assert!(!schema.is_empty());
            for _ in 0..20 {
                let r = d.generate(&mut rng);
                assert_eq!(r.values.len(), schema.len(), "{d:?}");
                assert!(r.values.iter().all(|v| !v.is_empty()), "{d:?}");
            }
        }
    }

    #[test]
    fn first_field_is_never_missing_capable() {
        for d in Domain::ALL {
            let schema = d.schema();
            assert!(
                !schema.fields[0].may_be_missing,
                "{d:?} first field must always be present (the paper's salient identifier)"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for d in Domain::ALL {
            let mut a = StdRng::seed_from_u64(99);
            let mut b = StdRng::seed_from_u64(99);
            assert_eq!(d.generate(&mut a), d.generate(&mut b));
        }
    }

    #[test]
    fn records_are_diverse() {
        let mut rng = StdRng::seed_from_u64(3);
        for d in Domain::ALL {
            let recs: Vec<_> = (0..10).map(|_| d.generate(&mut rng)).collect();
            let firsts: std::collections::HashSet<&str> =
                recs.iter().map(|r| r.values[0].as_str()).collect();
            assert!(firsts.len() >= 5, "{d:?}: too many duplicate identifiers");
        }
    }
}
