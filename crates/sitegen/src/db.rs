//! The record "database": schemas, records, and the value pools the domain
//! generators draw from.

use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// One field of a schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Internal field name, e.g. `name`.
    pub name: &'static str,
    /// The label shown next to the value on detail pages, e.g. `Name`.
    pub label: &'static str,
    /// Whether the list-page renderer may drop this field (the paper: "the
    /// first column, which usually contains the most salient identifier,
    /// such as the Name, is never missing").
    pub may_be_missing: bool,
}

/// A table schema: the ordered fields of a domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    /// Domain name, e.g. `white pages`.
    pub domain: &'static str,
    /// The fields, in list-page column order.
    pub fields: Vec<Field>,
}

impl Schema {
    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the schema has no fields (never produced by the domains).
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of a field by name.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }
}

/// One database record: one value per schema field.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Record {
    /// Values aligned with `Schema::fields`.
    pub values: Vec<String>,
}

// ---- value pools -----------------------------------------------------

/// First names.
pub const FIRST_NAMES: &[&str] = &[
    "John",
    "Mary",
    "Robert",
    "Patricia",
    "Michael",
    "Jennifer",
    "William",
    "Linda",
    "David",
    "Elizabeth",
    "Richard",
    "Barbara",
    "Joseph",
    "Susan",
    "Thomas",
    "Jessica",
    "Charles",
    "Sarah",
    "Christopher",
    "Karen",
    "Daniel",
    "Nancy",
    "Matthew",
    "Lisa",
    "Anthony",
    "Betty",
    "George",
    "Margaret",
    "Donald",
    "Sandra",
    "Kenneth",
    "Ashley",
    "Steven",
    "Kimberly",
    "Edward",
    "Emily",
    "Brian",
    "Donna",
    "Ronald",
    "Michelle",
];

/// Last names.
pub const LAST_NAMES: &[&str] = &[
    "Smith",
    "Johnson",
    "Williams",
    "Brown",
    "Jones",
    "Garcia",
    "Miller",
    "Davis",
    "Rodriguez",
    "Martinez",
    "Hernandez",
    "Lopez",
    "Gonzalez",
    "Wilson",
    "Anderson",
    "Thomas",
    "Taylor",
    "Moore",
    "Jackson",
    "Martin",
    "Lee",
    "Perez",
    "Thompson",
    "White",
    "Harris",
    "Sanchez",
    "Clark",
    "Ramirez",
    "Lewis",
    "Robinson",
    "Walker",
    "Young",
    "Allen",
    "King",
    "Wright",
    "Scott",
    "Torres",
    "Nguyen",
    "Hill",
    "Flores",
];

/// Street names.
pub const STREET_NAMES: &[&str] = &[
    "Washington",
    "Main",
    "Oak",
    "Pine",
    "Maple",
    "Cedar",
    "Elm",
    "Lake",
    "Hill",
    "Park",
    "Walnut",
    "Spring",
    "North",
    "Ridge",
    "Church",
    "Willow",
    "Mill",
    "Sunset",
    "Railroad",
    "Jefferson",
    "Center",
    "Highland",
    "Forest",
    "Jackson",
    "River",
    "Meadow",
    "Chestnut",
];

/// Street suffixes.
pub const STREET_SUFFIXES: &[&str] = &["St", "Ave", "Rd", "Blvd", "Ln", "Dr", "Ct", "Way"];

/// City names.
pub const CITIES: &[&str] = &[
    "Springfield",
    "Findlay",
    "Franklin",
    "Clinton",
    "Greenville",
    "Bristol",
    "Fairview",
    "Salem",
    "Madison",
    "Georgetown",
    "Arlington",
    "Ashland",
    "Dover",
    "Hudson",
    "Kingston",
    "Milton",
    "Newport",
    "Oxford",
    "Riverside",
    "Winchester",
    "Burlington",
    "Manchester",
    "Milford",
    "Auburn",
    "Dayton",
];

/// Two-letter state codes.
pub const STATES: &[&str] = &[
    "OH", "PA", "MI", "MN", "FL", "CA", "NY", "TX", "IL", "GA", "NC", "WA", "MA", "VA", "IN",
];

/// Publishing houses (books domain).
pub const PUBLISHERS: &[&str] = &[
    "Harper Press",
    "Random House",
    "Penguin Books",
    "Vintage Press",
    "Orion Media",
    "Scholastic Press",
    "Mariner Books",
    "Crown Publishing",
    "Anchor Books",
    "Back Bay Books",
];

/// Title words (books domain).
pub const TITLE_WORDS: &[&str] = &[
    "Shadow",
    "River",
    "Empire",
    "Garden",
    "Winter",
    "Secret",
    "Journey",
    "Silent",
    "Golden",
    "Broken",
    "Hidden",
    "Ancient",
    "Burning",
    "Crystal",
    "Distant",
    "Eternal",
    "Falling",
    "Gentle",
    "Harvest",
    "Island",
    "Lost",
    "Midnight",
    "Northern",
    "Painted",
    "Quiet",
    "Restless",
    "Scarlet",
    "Thunder",
    "Velvet",
    "Wandering",
];

/// Correctional facilities (corrections domain).
pub const FACILITIES: &[&str] = &[
    "Northpoint Correctional Facility",
    "Riverbend State Prison",
    "Lakeland Correctional Center",
    "Pine Grove Institution",
    "Cedar Creek Facility",
    "Stonegate Correctional Center",
    "Eastfork State Prison",
    "Willow Run Institution",
];

/// Inmate statuses (corrections domain).
pub const STATUSES: &[&str] = &["Incarcerated", "Released", "Probation", "Work Release"];

// ---- pool sampling helpers --------------------------------------------

/// Uniformly samples one item from a pool.
pub fn pick<'a>(rng: &mut StdRng, pool: &[&'a str]) -> &'a str {
    pool[rng.random_range(0..pool.len())]
}

/// A random `First Last` person name.
pub fn person_name(rng: &mut StdRng) -> String {
    format!("{} {}", pick(rng, FIRST_NAMES), pick(rng, LAST_NAMES))
}

/// A random street address like `221 Washington St`.
pub fn street_address(rng: &mut StdRng) -> String {
    format!(
        "{} {} {}",
        rng.random_range(100..9999),
        pick(rng, STREET_NAMES),
        pick(rng, STREET_SUFFIXES)
    )
}

/// A random phone number `(xxx) xxx-xxxx`.
pub fn phone(rng: &mut StdRng) -> String {
    format!(
        "({}) {}-{:04}",
        rng.random_range(200..990),
        rng.random_range(200..990),
        rng.random_range(0..10_000)
    )
}

/// A random 5-digit zip code.
pub fn zip(rng: &mut StdRng) -> String {
    format!("{:05}", rng.random_range(10_000..99_999))
}

/// A random date like `03-17-1998` (dashes keep it one extract).
pub fn date(rng: &mut StdRng) -> String {
    format!(
        "{:02}-{:02}-{}",
        rng.random_range(1..13),
        rng.random_range(1..29),
        rng.random_range(1960..2004)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn pools_are_nonempty_and_unique() {
        for pool in [
            FIRST_NAMES,
            LAST_NAMES,
            STREET_NAMES,
            CITIES,
            STATES,
            PUBLISHERS,
            TITLE_WORDS,
            FACILITIES,
            STATUSES,
        ] {
            assert!(!pool.is_empty());
            let mut sorted: Vec<&str> = pool.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), pool.len(), "duplicate entries in pool");
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let mut a = rng();
        let mut b = rng();
        assert_eq!(person_name(&mut a), person_name(&mut b));
        assert_eq!(street_address(&mut a), street_address(&mut b));
        assert_eq!(phone(&mut a), phone(&mut b));
    }

    #[test]
    fn phone_shape() {
        let mut r = rng();
        let p = phone(&mut r);
        assert!(p.starts_with('('));
        assert_eq!(p.len(), "(xxx) xxx-xxxx".len());
    }

    #[test]
    fn zip_and_date_shapes() {
        let mut r = rng();
        assert_eq!(zip(&mut r).len(), 5);
        let d = date(&mut r);
        assert_eq!(d.split('-').count(), 3);
    }

    #[test]
    fn schema_lookup() {
        let s = Schema {
            domain: "test",
            fields: vec![
                Field {
                    name: "name",
                    label: "Name",
                    may_be_missing: false,
                },
                Field {
                    name: "city",
                    label: "City",
                    may_be_missing: true,
                },
            ],
        };
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.field_index("city"), Some(1));
        assert_eq!(s.field_index("nope"), None);
    }
}
