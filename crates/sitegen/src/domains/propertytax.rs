//! The property-tax domain (Allegheny, Butler, Lee counties): parcel id,
//! owner, property address, assessed value, annual tax.

use rand::rngs::StdRng;
use rand::RngExt;

use crate::db::{self, Field, Record, Schema};

/// The property-tax schema.
pub fn schema() -> Schema {
    Schema {
        domain: "property tax",
        fields: vec![
            Field {
                name: "parcel",
                label: "Parcel ID",
                may_be_missing: false,
            },
            Field {
                name: "owner",
                label: "Owner",
                may_be_missing: false,
            },
            Field {
                name: "address",
                label: "Property Address",
                may_be_missing: true,
            },
            Field {
                name: "assessed",
                label: "Assessed Value",
                may_be_missing: true,
            },
            Field {
                name: "tax",
                label: "Annual Tax",
                may_be_missing: true,
            },
        ],
    }
}

/// Generates one parcel. Government sites are clean and regular (the paper:
/// "Commercial sites had the greatest complexity"), so values are plain.
pub fn generate(rng: &mut StdRng) -> Record {
    // Parcel ids like 042-118-0937: digits and dashes stay one extract.
    let parcel = format!(
        "{:03}-{:03}-{:04}",
        rng.random_range(1..400),
        rng.random_range(1..999),
        rng.random_range(1..10_000)
    );
    let assessed = rng.random_range(40..900) * 500;
    let tax = assessed / rng.random_range(40..80);
    Record {
        values: vec![
            parcel,
            db::person_name(rng),
            db::street_address(rng),
            format!("{assessed}.00"),
            format!("{tax}.00"),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn record_matches_schema() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = generate(&mut rng);
        assert_eq!(r.values.len(), schema().len());
        assert_eq!(r.values[0].split('-').count(), 3);
        assert!(r.values[3].ends_with(".00"));
    }

    #[test]
    fn parcel_ids_are_mostly_unique() {
        let mut rng = StdRng::seed_from_u64(5);
        let ids: std::collections::HashSet<String> = (0..30)
            .map(|_| generate(&mut rng).values[0].clone())
            .collect();
        assert!(ids.len() >= 29);
    }
}
