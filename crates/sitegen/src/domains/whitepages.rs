//! The white-pages domain (Superpages, Yahoo People, Canada411,
//! SprintCanada): name, street address, city + state, zip, phone.

use rand::rngs::StdRng;

use crate::db::{self, Field, Record, Schema};

/// The white-pages schema.
pub fn schema() -> Schema {
    Schema {
        domain: "white pages",
        fields: vec![
            Field {
                name: "name",
                label: "Name",
                may_be_missing: false,
            },
            Field {
                name: "address",
                label: "Address",
                may_be_missing: true,
            },
            Field {
                name: "city",
                label: "City",
                may_be_missing: true,
            },
            Field {
                name: "zip",
                label: "Zip",
                may_be_missing: true,
            },
            Field {
                name: "phone",
                label: "Phone",
                may_be_missing: true,
            },
        ],
    }
}

/// Generates one listing.
pub fn generate(rng: &mut StdRng) -> Record {
    let city = format!(
        "{}, {}",
        db::pick(rng, db::CITIES),
        db::pick(rng, db::STATES)
    );
    Record {
        values: vec![
            db::person_name(rng),
            db::street_address(rng),
            city,
            db::zip(rng),
            db::phone(rng),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn record_matches_schema() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = generate(&mut rng);
        assert_eq!(r.values.len(), schema().len());
        // City field has the ", ST" shape.
        assert!(r.values[2].contains(", "));
        // Phone field shape.
        assert!(r.values[4].starts_with('('));
    }
}
