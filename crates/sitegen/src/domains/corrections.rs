//! The corrections domain (Ohio, Minnesota, Michigan): inmate id, name,
//! status, facility, admission date.

use rand::rngs::StdRng;
use rand::RngExt;

use crate::db::{self, Field, Record, Schema};

/// The corrections schema.
pub fn schema() -> Schema {
    Schema {
        domain: "corrections",
        fields: vec![
            Field {
                name: "id",
                label: "Inmate Number",
                may_be_missing: false,
            },
            Field {
                name: "name",
                label: "Name",
                may_be_missing: false,
            },
            Field {
                name: "status",
                label: "Status",
                may_be_missing: true,
            },
            Field {
                name: "facility",
                label: "Facility",
                may_be_missing: true,
            },
            Field {
                name: "admitted",
                label: "Admission Date",
                may_be_missing: true,
            },
        ],
    }
}

/// Generates one inmate record.
pub fn generate(rng: &mut StdRng) -> Record {
    Record {
        values: vec![
            format!("{:06}", rng.random_range(100_000..999_999)),
            db::person_name(rng),
            db::pick(rng, db::STATUSES).to_owned(),
            db::pick(rng, db::FACILITIES).to_owned(),
            db::date(rng),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn record_matches_schema() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = generate(&mut rng);
        assert_eq!(r.values.len(), schema().len());
        assert_eq!(r.values[0].len(), 6);
        assert!(db::STATUSES.contains(&r.values[2].as_str()));
        assert!(db::FACILITIES.contains(&r.values[3].as_str()));
    }

    #[test]
    fn statuses_vary() {
        let mut rng = StdRng::seed_from_u64(4);
        let statuses: std::collections::HashSet<String> = (0..40)
            .map(|_| generate(&mut rng).values[2].clone())
            .collect();
        assert!(statuses.len() >= 3);
    }
}
