//! The book-seller domain (Amazon, BN Books): title, authors, publisher,
//! year, price.

use rand::rngs::StdRng;
use rand::RngExt;

use crate::db::{self, Field, Record, Schema};

/// The books schema.
pub fn schema() -> Schema {
    Schema {
        domain: "books",
        fields: vec![
            Field {
                name: "title",
                label: "Title",
                may_be_missing: false,
            },
            Field {
                name: "authors",
                label: "Authors",
                may_be_missing: false,
            },
            Field {
                name: "publisher",
                label: "Publisher",
                may_be_missing: true,
            },
            Field {
                name: "year",
                label: "Year",
                may_be_missing: true,
            },
            Field {
                name: "price",
                label: "Price",
                may_be_missing: true,
            },
        ],
    }
}

/// Generates one book. Roughly a third of books have multiple authors —
/// the precondition for the Amazon "et al" abbreviation quirk.
pub fn generate(rng: &mut StdRng) -> Record {
    let title_len = rng.random_range(2..5);
    let mut title_words = Vec::with_capacity(title_len);
    for _ in 0..title_len {
        title_words.push(db::pick(rng, db::TITLE_WORDS));
    }
    title_words.dedup();
    let title = format!("The {}", title_words.join(" "));

    let num_authors = if rng.random_bool(0.35) {
        rng.random_range(2..4)
    } else {
        1
    };
    let authors = (0..num_authors)
        .map(|_| db::person_name(rng))
        .collect::<Vec<_>>()
        .join(", ");

    Record {
        values: vec![
            title,
            authors,
            db::pick(rng, db::PUBLISHERS).to_owned(),
            rng.random_range(1985..2004).to_string(),
            format!(
                "{}.{:02}",
                rng.random_range(5..60),
                rng.random_range(0..100)
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn record_matches_schema() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = generate(&mut rng);
        assert_eq!(r.values.len(), schema().len());
        assert!(r.values[0].starts_with("The "));
        let year: u32 = r.values[3].parse().expect("year is numeric");
        assert!((1985..2004).contains(&year));
    }

    #[test]
    fn some_books_have_multiple_authors() {
        let mut rng = StdRng::seed_from_u64(2);
        let multi = (0..50)
            .map(|_| generate(&mut rng))
            .filter(|r| r.values[1].contains(','))
            .count();
        assert!(multi > 5, "need multi-author books for the et-al quirk");
    }
}
