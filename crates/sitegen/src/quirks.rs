//! Data quirks: the inconsistency classes the paper reports as the causes
//! of segmentation failures (Section 6.3), injected deterministically.

use rand::rngs::StdRng;
use rand::RngExt;
use serde::Serialize;

use crate::db::{Record, Schema};

/// A site-level data quirk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Quirk {
    /// The detail page shows the value in a different letter case than the
    /// list page (Minnesota Corrections: "there was a case mismatch between
    /// attribute values on list and detail pages").
    CaseMismatch {
        /// Affected field name.
        field: &'static str,
    },
    /// Multi-valued fields are abbreviated on the list page (Amazon: "a
    /// long list of authors was abbreviated as 'FirstName LastName, et al'
    /// on list pages, while the names appeared in full on the detail
    /// page").
    EtAlAbbreviation {
        /// Affected field name.
        field: &'static str,
    },
    /// The list value differs from the detail value *and* the list value
    /// appears on a different record's detail page in an unrelated context
    /// (Michigan Corrections: "status of a paroled inmate was listed as
    /// 'Parole' on list pages and 'Parolee' on detail pages.
    /// Unfortunately, the string 'Parole' appeared on another page in a
    /// completely different context").
    ValueInUnrelatedContext {
        /// Affected field name.
        field: &'static str,
    },
    /// Every record shares the field value, and one record's detail page
    /// omits it (Canada411: "one of the records had the town attribute
    /// missing on the detail page but not on the list page. Since the town
    /// name was the same as in other records, it was found on every detail
    /// page but the one corresponding to the record in question").
    SharedValueMissingOnDetail {
        /// Affected field name.
        field: &'static str,
    },
    /// Detail pages display the titles of previously "viewed" records
    /// (Amazon: "the site offers the user a useful feature of displaying
    /// her browsing history on the pages").
    BrowsingHistory,
    /// Records with a missing value render an explanatory string in
    /// alternate markup (Superpages: "If an address field is missing, the
    /// text 'street address not available' is displayed in gray font").
    DisjunctiveFormatting {
        /// Affected field name.
        field: &'static str,
    },
    /// The list page carries a promotional block ("Customers also
    /// bought ...") duplicating the identifiers of `count` records from
    /// the same page, *outside* their rows. With the whole-page fallback
    /// in effect these duplicates compete with the real extracts for the
    /// same detail-page occurrences — the confounding the paper reports
    /// for the book sites ("many of the strings in the list page, that
    /// were not part of the list, appeared in detail pages").
    ListPagePromos {
        /// How many records are echoed in the promo block.
        count: usize,
    },
    /// The list-page header echoes the query value ("Results for
    /// <b>Pine Grove Institution</b>"). The echoed string also appears on
    /// the detail page of every record sharing that value, so it competes
    /// with the real row extracts for the same detail-page occurrences —
    /// strings "not part of the table \[that\] found matches on detail
    /// pages" (Section 6.3).
    QueryEcho {
        /// The field whose most frequent page value is echoed.
        field: &'static str,
    },
}

/// The per-record rendering instructions after quirk application.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecordView {
    /// What the list page shows per field (`None` = field omitted).
    pub list_values: Vec<Option<String>>,
    /// Whether the list value is rendered with the alternate (gray-font)
    /// markup — the disjunction RoadRunner-style grammars cannot express.
    pub alternate_markup: Vec<bool>,
    /// What the detail page shows per field (`None` = field omitted).
    pub detail_values: Vec<Option<String>>,
    /// Extra visible strings appended to the detail page (browsing
    /// history, unrelated footers).
    pub detail_extras: Vec<String>,
}

/// Applies missing-field sampling and all quirks to a page's records,
/// producing rendering instructions.
pub fn apply(
    quirks: &[Quirk],
    schema: &Schema,
    records: &mut [Record],
    missing_field_prob: f64,
    page: usize,
    rng: &mut StdRng,
) -> Vec<RecordView> {
    // Pre-pass: quirks that rewrite the records themselves.
    for q in quirks {
        match *q {
            Quirk::SharedValueMissingOnDetail { field } => {
                if let Some(fi) = schema.field_index(field) {
                    if let Some(shared) = records.first().map(|r| r.values[fi].clone()) {
                        for r in records.iter_mut() {
                            r.values[fi] = shared.clone();
                        }
                    }
                }
            }
            // Guarantee one affected record — but only on the first
            // sample page. If the value also occurred on the other
            // list page, the all-list-pages filter would discard the
            // extract and hide the inconsistency (the paper's Michigan
            // value evidently appeared on one sample page only).
            Quirk::ValueInUnrelatedContext { field } if page == 0 => {
                if let Some(fi) = schema.field_index(field) {
                    if let Some(r) = records.get_mut(0) {
                        r.values[fi] = "Parole".to_owned();
                    }
                }
            }
            _ => {}
        }
    }

    // Base views with missing-field sampling.
    let mut views: Vec<RecordView> = records
        .iter()
        .map(|r| {
            let mut list_values = Vec::with_capacity(schema.len());
            let mut detail_values = Vec::with_capacity(schema.len());
            for (fi, f) in schema.fields.iter().enumerate() {
                let missing = f.may_be_missing && rng.random_bool(missing_field_prob);
                if missing {
                    list_values.push(None);
                    detail_values.push(None);
                } else {
                    list_values.push(Some(r.values[fi].clone()));
                    detail_values.push(Some(r.values[fi].clone()));
                }
            }
            RecordView {
                alternate_markup: vec![false; schema.len()],
                list_values,
                detail_values,
                detail_extras: Vec::new(),
            }
        })
        .collect();

    for q in quirks {
        match *q {
            Quirk::CaseMismatch { field } => {
                if let Some(fi) = schema.field_index(field) {
                    for v in &mut views {
                        if let Some(val) = &v.detail_values[fi] {
                            v.detail_values[fi] = Some(val.to_uppercase());
                        }
                    }
                }
            }
            Quirk::EtAlAbbreviation { field } => {
                if let Some(fi) = schema.field_index(field) {
                    for v in &mut views {
                        if let Some(val) = &v.list_values[fi] {
                            if let Some((first, _)) = val.split_once(", ") {
                                v.list_values[fi] = Some(format!("{first}, et al"));
                            }
                        }
                    }
                }
            }
            Quirk::ValueInUnrelatedContext { field } => {
                if let Some(fi) = schema.field_index(field) {
                    let n = views.len();
                    let affected: Vec<usize> = records
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| r.values[fi] == "Parole")
                        .map(|(i, _)| i)
                        .collect();
                    for &i in &affected {
                        if views[i].detail_values[fi].is_some() {
                            views[i].detail_values[fi] = Some("Parolee".to_owned());
                        }
                        // The list string appears in an unrelated context on
                        // the *next* record's detail page.
                        let other = (i + 1) % n;
                        if other != i {
                            views[other]
                                .detail_extras
                                .push("Parole board hearing schedule".to_owned());
                        }
                    }
                }
            }
            Quirk::SharedValueMissingOnDetail { field } => {
                if let Some(fi) = schema.field_index(field) {
                    let victim = views.len() / 2;
                    if let Some(v) = views.get_mut(victim) {
                        // Present on the list, absent from the detail page.
                        if v.list_values[fi].is_none() {
                            v.list_values[fi] = Some(records[victim].values[fi].clone());
                        }
                        v.detail_values[fi] = None;
                    }
                    // All other records must show it on both sides.
                    for (i, v) in views.iter_mut().enumerate() {
                        if i != victim {
                            v.list_values[fi] = Some(records[i].values[fi].clone());
                            v.detail_values[fi] = Some(records[i].values[fi].clone());
                        }
                    }
                }
            }
            Quirk::ListPagePromos { .. } | Quirk::QueryEcho { .. } => {
                // Handled at page-rendering time (site.rs); nothing to do
                // per record.
            }
            Quirk::BrowsingHistory => {
                // Record i's detail page shows two "recently viewed"
                // titles. The paper downloaded pages manually, so the
                // browsing order — and hence which titles leak onto which
                // detail pages — is arbitrary with respect to the record
                // order; a fixed pseudo-random schedule reproduces that.
                let titles: Vec<String> = records.iter().map(|r| r.values[0].clone()).collect();
                let n = views.len();
                if n >= 2 {
                    for (i, v) in views.iter_mut().enumerate() {
                        for offset in [3 * i + 1, 5 * i + 2] {
                            let k = (i + 1 + offset % (n - 1)) % n;
                            if k != i {
                                v.detail_extras
                                    .push(format!("Recently viewed {}", titles[k]));
                            }
                        }
                    }
                }
            }
            Quirk::DisjunctiveFormatting { field } => {
                if let Some(fi) = schema.field_index(field) {
                    // Ensure at least one record takes the alternate branch.
                    let mut any = views.iter().any(|v| v.list_values[fi].is_none());
                    if !any {
                        if let Some(v) = views.last_mut() {
                            v.list_values[fi] = None;
                            v.detail_values[fi] = None;
                            any = true;
                        }
                    }
                    if any {
                        for v in &mut views {
                            if v.list_values[fi].is_none() {
                                v.list_values[fi] = Some(format!("{} not available", field));
                                v.alternate_markup[fi] = true;
                                v.detail_values[fi] = None;
                            }
                        }
                    }
                }
            }
        }
    }
    views
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::Domain;
    use rand::SeedableRng;

    fn setup(domain: Domain, n: usize) -> (Schema, Vec<Record>, StdRng) {
        let mut rng = StdRng::seed_from_u64(11);
        let schema = domain.schema();
        let records = (0..n).map(|_| domain.generate(&mut rng)).collect();
        (schema, records, rng)
    }

    #[test]
    fn no_quirks_gives_symmetric_views() {
        let (schema, mut records, mut rng) = setup(Domain::WhitePages, 5);
        let views = apply(&[], &schema, &mut records, 0.0, 0, &mut rng);
        assert_eq!(views.len(), 5);
        for (v, r) in views.iter().zip(&records) {
            for fi in 0..schema.len() {
                assert_eq!(v.list_values[fi].as_deref(), Some(r.values[fi].as_str()));
                assert_eq!(v.list_values[fi], v.detail_values[fi]);
                assert!(!v.alternate_markup[fi]);
            }
            assert!(v.detail_extras.is_empty());
        }
    }

    #[test]
    fn missing_prob_only_hits_optional_fields() {
        let (schema, mut records, mut rng) = setup(Domain::WhitePages, 30);
        let views = apply(&[], &schema, &mut records, 0.9, 0, &mut rng);
        for v in &views {
            assert!(v.list_values[0].is_some(), "identifier never missing");
        }
        let missing = views.iter().filter(|v| v.list_values[2].is_none()).count();
        assert!(missing > 10, "high missing prob must drop optional fields");
    }

    #[test]
    fn case_mismatch_uppercases_detail_only() {
        let (schema, mut records, mut rng) = setup(Domain::Corrections, 4);
        let views = apply(
            &[Quirk::CaseMismatch { field: "name" }],
            &schema,
            &mut records,
            0.0,
            0,
            &mut rng,
        );
        for (v, r) in views.iter().zip(&records) {
            let fi = schema.field_index("name").unwrap();
            assert_eq!(v.list_values[fi].as_deref(), Some(r.values[fi].as_str()));
            assert_eq!(
                v.detail_values[fi].as_deref(),
                Some(r.values[fi].to_uppercase().as_str())
            );
        }
    }

    #[test]
    fn et_al_abbreviates_multi_author_lists() {
        let (schema, mut records, mut rng) = setup(Domain::Books, 20);
        let fi = schema.field_index("authors").unwrap();
        let views = apply(
            &[Quirk::EtAlAbbreviation { field: "authors" }],
            &schema,
            &mut records,
            0.0,
            0,
            &mut rng,
        );
        let mut saw_abbreviation = false;
        for (v, r) in views.iter().zip(&records) {
            if r.values[fi].contains(", ") {
                let lv = v.list_values[fi].as_deref().unwrap();
                assert!(lv.ends_with(", et al"), "{lv}");
                saw_abbreviation = true;
                // Detail keeps the full list.
                assert_eq!(v.detail_values[fi].as_deref(), Some(r.values[fi].as_str()));
            }
        }
        assert!(saw_abbreviation);
    }

    #[test]
    fn parole_quirk_creates_unrelated_context() {
        let (schema, mut records, mut rng) = setup(Domain::Corrections, 5);
        let views = apply(
            &[Quirk::ValueInUnrelatedContext { field: "status" }],
            &schema,
            &mut records,
            0.0,
            0,
            &mut rng,
        );
        let fi = schema.field_index("status").unwrap();
        // Record 0 forced to Parole on the list, Parolee on the detail.
        assert_eq!(views[0].list_values[fi].as_deref(), Some("Parole"));
        assert_eq!(views[0].detail_values[fi].as_deref(), Some("Parolee"));
        // The next record's detail page mentions "Parole" in an unrelated
        // context.
        assert!(views[1].detail_extras.iter().any(|e| e.contains("Parole")));
    }

    #[test]
    fn shared_value_missing_on_detail() {
        let (schema, mut records, mut rng) = setup(Domain::WhitePages, 6);
        let views = apply(
            &[Quirk::SharedValueMissingOnDetail { field: "city" }],
            &schema,
            &mut records,
            0.3,
            0,
            &mut rng,
        );
        let fi = schema.field_index("city").unwrap();
        let victim = views.len() / 2;
        let shared = views[0].list_values[fi].clone().unwrap();
        for (i, v) in views.iter().enumerate() {
            assert_eq!(v.list_values[fi].as_deref(), Some(shared.as_str()));
            if i == victim {
                assert!(v.detail_values[fi].is_none());
            } else {
                assert_eq!(v.detail_values[fi].as_deref(), Some(shared.as_str()));
            }
        }
    }

    #[test]
    fn browsing_history_leaks_other_titles_onto_detail_pages() {
        let (schema, mut records, mut rng) = setup(Domain::Books, 4);
        let views = apply(
            &[Quirk::BrowsingHistory],
            &schema,
            &mut records,
            0.0,
            0,
            &mut rng,
        );
        let titles: Vec<&str> = records.iter().map(|r| r.values[0].as_str()).collect();
        for (i, v) in views.iter().enumerate() {
            // Every leaked title belongs to a *different* record.
            for extra in &v.detail_extras {
                assert!(extra.starts_with("Recently viewed "));
                assert!(
                    !extra.contains(titles[i]),
                    "record {i} must not echo its own title: {extra}"
                );
                assert!(
                    titles.iter().any(|t| extra.contains(t)),
                    "leaked title must be a real record title: {extra}"
                );
            }
            assert!(v.detail_extras.len() <= 2);
        }
        // Contamination is not empty overall.
        assert!(views.iter().any(|v| !v.detail_extras.is_empty()));
        let _ = schema;
    }

    #[test]
    fn disjunctive_formatting_marks_alternate_branch() {
        let (schema, mut records, mut rng) = setup(Domain::WhitePages, 8);
        let views = apply(
            &[Quirk::DisjunctiveFormatting { field: "address" }],
            &schema,
            &mut records,
            0.4,
            0,
            &mut rng,
        );
        let fi = schema.field_index("address").unwrap();
        let alt: Vec<&RecordView> = views.iter().filter(|v| v.alternate_markup[fi]).collect();
        assert!(
            !alt.is_empty(),
            "at least one record takes the alternate branch"
        );
        for v in alt {
            assert_eq!(v.list_values[fi].as_deref(), Some("address not available"));
            assert!(v.detail_values[fi].is_none());
        }
    }
}
