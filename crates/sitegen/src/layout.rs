//! Page rendering: list pages in three layout styles and detail pages.
//!
//! "In addition to displaying different data, the pages varied greatly in
//! their presentation and layout. Some used grid-like tables, with or
//! without borders ... Others were more free-form, with a block of the page
//! containing information about an item ... The entries could be numbered
//! or unnumbered." (Section 6.1)

use tableseg_html::writer::HtmlWriter;

use crate::db::Schema;
use crate::quirks::RecordView;
use crate::truth::{GroundTruth, RecordSpan};

/// How the list page lays out its records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum LayoutStyle {
    /// A bordered `<table>` with one `<tr>` per record and a header row —
    /// the government-site style.
    GridTable,
    /// Free-form blocks: one `<p>` per record with `<br>`-separated fields
    /// and a "More Info" link — the commercial-site style.
    FreeForm,
    /// Numbered entries (`1.`, `2.`, ...) — the style that breaks page
    /// template finding (Amazon, BN Books, Minnesota Corrections).
    NumberedList,
}

/// Renders a list page; returns the HTML and the record ground truth.
// The parameters mirror the independent page-chrome knobs of a 2004
// search-results page; bundling them into a struct would only rename them.
#[allow(clippy::too_many_arguments)]
pub fn render_list_page(
    site_name: &str,
    style: LayoutStyle,
    schema: &Schema,
    views: &[RecordView],
    promos: &[String],
    query_echo: Option<&str>,
    page_index: usize,
    number_offset: usize,
    total_matches: usize,
) -> (String, GroundTruth) {
    let mut w = HtmlWriter::new();
    w.open("html");
    w.open("head")
        .element("title", &format!("{site_name} Search Results"))
        .close();
    w.open("body");
    w.raw("<img src=\"/images/logo.gif\">");
    w.element("h1", site_name);
    w.newline();
    w.element("h2", &format!("{} Matching Listings", views.len()));
    if let Some(echo) = query_echo {
        w.open("p")
            .text("Results for ")
            .open("b")
            .text(echo)
            .close()
            .close();
        w.newline();
    }
    w.element(
        "p",
        &format!(
            "Displaying {}-{} of {} records.",
            page_index * views.len() + 1,
            (page_index + 1) * views.len(),
            total_matches
        ),
    );
    w.open_attrs("a", "href=\"/search\"")
        .text("Search Again")
        .close();
    w.newline();

    let mut spans = Vec::with_capacity(views.len());
    match style {
        LayoutStyle::GridTable => render_grid(&mut w, schema, views, page_index, &mut spans),
        LayoutStyle::FreeForm => render_freeform(&mut w, schema, views, page_index, &mut spans),
        LayoutStyle::NumberedList => {
            render_numbered(&mut w, schema, views, page_index, number_offset, &mut spans)
        }
    }

    w.newline();
    w.open_attrs("a", "href=\"/ads/0\"")
        .text("Todays Special Offer")
        .close();
    w.open_attrs("a", "href=\"/ads/1\"")
        .text("Win A Prize")
        .close();
    w.newline();
    if !promos.is_empty() {
        w.element("h3", "Customers also bought");
        w.open("ul");
        for promo in promos {
            w.open("li").open("i").text(promo).close().close();
        }
        w.close(); // ul
        w.newline();
    }
    w.open_attrs("a", &format!("href=\"/list/{}\"", page_index + 1))
        .text("Next")
        .close();
    w.element(
        "p",
        &format!("Copyright 2004 {site_name} Inc. All rights reserved."),
    );
    w.close(); // body
    w.close(); // html
    let html = w.finish();
    (html, GroundTruth { records: spans })
}

fn record_values(view: &RecordView) -> Vec<String> {
    view.list_values.iter().flatten().cloned().collect()
}

fn render_grid(
    w: &mut HtmlWriter,
    schema: &Schema,
    views: &[RecordView],
    page_index: usize,
    spans: &mut Vec<RecordSpan>,
) {
    w.open_attrs("table", "border=1 cellpadding=2");
    w.newline();
    w.open("tr");
    for f in &schema.fields {
        w.element("th", f.label);
    }
    w.close();
    w.newline();
    for (i, view) in views.iter().enumerate() {
        let start = w.snapshot_len();
        w.open("tr");
        for (fi, lv) in view.list_values.iter().enumerate() {
            w.open("td");
            match lv {
                Some(v) if fi == 0 => {
                    // The salient identifier links to the detail page.
                    w.open_attrs("a", &format!("href=\"/detail/{page_index}/{i}\""))
                        .text(v)
                        .close();
                }
                Some(v) if view.alternate_markup[fi] => {
                    w.open_attrs("font", "color=gray").text(v).close();
                }
                Some(v) => {
                    w.text(v);
                }
                None => {
                    w.raw("&nbsp;");
                }
            }
            w.close();
        }
        w.close();
        let end = w.snapshot_len();
        spans.push(RecordSpan {
            start,
            end,
            values: record_values(view),
        });
        w.newline();
    }
    w.close(); // table
}

fn render_freeform(
    w: &mut HtmlWriter,
    schema: &Schema,
    views: &[RecordView],
    page_index: usize,
    spans: &mut Vec<RecordSpan>,
) {
    w.open("div");
    w.newline();
    for (i, view) in views.iter().enumerate() {
        let start = w.snapshot_len();
        w.open("p");
        let mut first = true;
        for (fi, lv) in view.list_values.iter().enumerate() {
            let Some(v) = lv else { continue };
            if first {
                w.open("b").text(v).close();
                first = false;
                continue;
            }
            w.void("br");
            if view.alternate_markup[fi] {
                w.open_attrs("font", "color=gray").text(v).close();
            } else if schema.fields[fi].name == "phone" {
                // A labelled field, as commercial sites often render them.
                w.text("Phone: ").text(v);
            } else {
                w.text(v);
            }
        }
        w.text(" ");
        w.open_attrs("a", &format!("href=\"/detail/{page_index}/{i}\""))
            .text("More Info")
            .close();
        w.close(); // p
        let end = w.snapshot_len();
        spans.push(RecordSpan {
            start,
            end,
            values: record_values(view),
        });
        w.void("hr");
        w.newline();
    }
    w.close(); // div
}

fn render_numbered(
    w: &mut HtmlWriter,
    schema: &Schema,
    views: &[RecordView],
    page_index: usize,
    number_offset: usize,
    spans: &mut Vec<RecordSpan>,
) {
    let _ = schema;
    w.open("div");
    w.newline();
    for (i, view) in views.iter().enumerate() {
        let start = w.snapshot_len();
        w.open("p");
        // The entry number: shared across pages, which is what breaks the
        // page-template algorithm (Section 6.3).
        w.text(&format!("{}.", number_offset + i + 1));
        let mut first = true;
        for (fi, lv) in view.list_values.iter().enumerate() {
            let Some(v) = lv else { continue };
            if first {
                w.open_attrs("a", &format!("href=\"/detail/{page_index}/{i}\""))
                    .open("b")
                    .text(v)
                    .close()
                    .close();
                first = false;
                continue;
            }
            if view.alternate_markup[fi] {
                w.void("br");
                w.open_attrs("font", "color=gray").text(v).close();
            } else {
                w.void("br");
                w.text(v);
            }
        }
        w.close(); // p
        let end = w.snapshot_len();
        spans.push(RecordSpan {
            start,
            end,
            values: record_values(view),
        });
        w.newline();
    }
    w.close(); // div
}

/// Renders the detail page of one record.
pub fn render_detail_page(site_name: &str, schema: &Schema, view: &RecordView) -> String {
    let mut w = HtmlWriter::new();
    w.open("html");
    w.open("head")
        .element("title", &format!("{site_name} - Details"))
        .close();
    w.open("body");
    w.raw("<img src=\"/images/logo.gif\">");
    w.element("h1", site_name);
    w.newline();
    // The salient identifier is repeated as a heading, as real detail
    // pages do.
    if let Some(id) = view.detail_values.first().and_then(Option::as_deref) {
        w.element("h2", id);
    }
    w.open_attrs("table", "cellspacing=0");
    w.newline();
    for (fi, dv) in view.detail_values.iter().enumerate() {
        let Some(v) = dv else { continue };
        w.open("tr");
        w.open("td")
            .open("b")
            .text(schema.fields[fi].label)
            .text(":")
            .close()
            .close();
        w.element("td", v);
        w.close();
        w.newline();
    }
    w.close(); // table
    w.raw("<img src=\"/images/map.gif\" alt=\"Map of the area\">");
    w.newline();
    for extra in &view.detail_extras {
        w.element("p", extra);
        w.newline();
    }
    w.open_attrs("a", "href=\"/search\"")
        .text("New Search")
        .close();
    w.element(
        "p",
        &format!("Copyright 2004 {site_name} Inc. All rights reserved."),
    );
    w.close(); // body
    w.close(); // html
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::Domain;
    use crate::quirks::apply;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tableseg_html::dom::parse;

    fn views(domain: Domain, n: usize) -> (Schema, Vec<RecordView>) {
        let mut rng = StdRng::seed_from_u64(21);
        let schema = domain.schema();
        let mut records: Vec<_> = (0..n).map(|_| domain.generate(&mut rng)).collect();
        let views = apply(&[], &schema, &mut records, 0.0, 0, &mut rng);
        (schema, views)
    }

    #[test]
    fn grid_page_has_one_tr_per_record_plus_header() {
        let (schema, v) = views(Domain::PropertyTax, 5);
        let (html, truth) = render_list_page(
            "Testville County",
            LayoutStyle::GridTable,
            &schema,
            &v,
            &[],
            None,
            0,
            0,
            35,
        );
        let dom = parse(&html);
        assert_eq!(dom.find_all("tr").len(), 6);
        assert_eq!(truth.len(), 5);
    }

    #[test]
    fn spans_cover_their_values() {
        for style in [
            LayoutStyle::GridTable,
            LayoutStyle::FreeForm,
            LayoutStyle::NumberedList,
        ] {
            let (schema, v) = views(Domain::WhitePages, 4);
            let (html, truth) =
                render_list_page("TestPages", style, &schema, &v, &[], None, 0, 0, 4);
            for span in &truth.records {
                let row = &html[span.start..span.end];
                for value in &span.values {
                    let escaped = tableseg_html::entities::encode_text(value);
                    assert!(
                        row.contains(&escaped),
                        "{style:?}: span missing value {value:?} in {row:?}"
                    );
                }
            }
            // Spans are ordered and disjoint.
            for w2 in truth.records.windows(2) {
                assert!(w2[0].end <= w2[1].start);
            }
        }
    }

    #[test]
    fn freeform_has_more_info_links() {
        let (schema, v) = views(Domain::WhitePages, 3);
        let (html, _) = render_list_page(
            "TestPages",
            LayoutStyle::FreeForm,
            &schema,
            &v,
            &[],
            None,
            0,
            0,
            3,
        );
        assert_eq!(html.matches("More Info").count(), 3);
        assert!(html.contains("Phone: "));
    }

    #[test]
    fn numbered_entries_carry_numbers() {
        let (schema, v) = views(Domain::Books, 3);
        let (html, _) = render_list_page(
            "TestBooks",
            LayoutStyle::NumberedList,
            &schema,
            &v,
            &[],
            None,
            0,
            0,
            3,
        );
        assert!(html.contains("1."));
        assert!(html.contains("2."));
        assert!(html.contains("3."));
    }

    #[test]
    fn detail_page_shows_labels_and_values() {
        let (schema, v) = views(Domain::Corrections, 1);
        let html = render_detail_page("TestCorrections", &schema, &v[0]);
        let dom = parse(&html);
        let text = dom.text_content();
        assert!(text.contains("Inmate Number"));
        assert!(text.contains(v[0].detail_values[1].as_deref().unwrap()));
        assert!(text.contains("Copyright 2004"));
    }

    #[test]
    fn detail_page_omits_missing_fields() {
        let (schema, mut v) = views(Domain::WhitePages, 1);
        v[0].detail_values[2] = None;
        let html = render_detail_page("TestPages", &schema, &v[0]);
        assert!(!html.contains("City"));
    }

    #[test]
    fn page_chrome_differs_between_pages() {
        let (schema, v) = views(Domain::WhitePages, 2);
        let (p0, _) = render_list_page(
            "TestPages",
            LayoutStyle::GridTable,
            &schema,
            &v,
            &[],
            None,
            0,
            0,
            14,
        );
        let (p1, _) = render_list_page(
            "TestPages",
            LayoutStyle::GridTable,
            &schema,
            &v,
            &[],
            None,
            1,
            2,
            14,
        );
        assert!(p0.contains("Displaying 1-2"));
        assert!(p1.contains("Displaying 3-4"));
    }
}
