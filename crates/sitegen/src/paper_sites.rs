//! The twelve site configurations mirroring the paper's evaluation set
//! (Section 6.1): "book sellers (Amazon, BNBooks), property tax sites
//! (Buttler, Allegheny, Lee counties), white pages (Superpages, Yahoo,
//! Canada411, SprintCanada) and corrections (Ohio, Minnesotta, Michigan)".
//!
//! Record counts per list page follow Table 4 (Cor + InC + FN per row);
//! quirks follow the failure analysis of Section 6.3.

use crate::domains::Domain;
use crate::quirks::Quirk;
use crate::site::{LayoutStyle, SiteSpec};

/// Builds all twelve sites, in the order of the paper's Table 4.
pub fn all() -> Vec<SiteSpec> {
    vec![
        amazon(),
        bn_books(),
        allegheny(),
        butler(),
        lee(),
        michigan(),
        minnesota(),
        ohio(),
        canada411(),
        sprint_canada(),
        yahoo_people(),
        superpages(),
    ]
}

/// Amazon Books: numbered entries (template failure), browsing-history
/// contamination, "et al" author abbreviation. The paper's hardest site.
pub fn amazon() -> SiteSpec {
    SiteSpec {
        name: "Amazon Books".into(),
        domain: Domain::Books,
        layout: LayoutStyle::NumberedList,
        records_per_page: vec![10, 10],
        quirks: vec![
            Quirk::BrowsingHistory,
            Quirk::EtAlAbbreviation { field: "authors" },
            Quirk::ListPagePromos { count: 3 },
        ],
        missing_field_prob: 0.1,
        continuous_numbering: false,
        overlap: 0,
        seed: 0xA3A201,
    }
}

/// BN Books: numbered entries.
pub fn bn_books() -> SiteSpec {
    SiteSpec {
        name: "BN Books".into(),
        domain: Domain::Books,
        layout: LayoutStyle::NumberedList,
        records_per_page: vec![10, 10],
        quirks: vec![Quirk::ListPagePromos { count: 3 }],
        missing_field_prob: 0.1,
        continuous_numbering: false,
        overlap: 0,
        seed: 0xB4B402,
    }
}

/// Allegheny County property tax: clean grid tables.
pub fn allegheny() -> SiteSpec {
    SiteSpec {
        name: "Allegheny County".into(),
        domain: Domain::PropertyTax,
        layout: LayoutStyle::GridTable,
        records_per_page: vec![20, 20],
        quirks: vec![],
        missing_field_prob: 0.05,
        continuous_numbering: false,
        overlap: 0,
        seed: 0xA77E03,
    }
}

/// Butler County property tax: clean grid tables.
pub fn butler() -> SiteSpec {
    SiteSpec {
        name: "Butler County".into(),
        domain: Domain::PropertyTax,
        layout: LayoutStyle::GridTable,
        records_per_page: vec![15, 12],
        quirks: vec![],
        missing_field_prob: 0.05,
        continuous_numbering: false,
        overlap: 0,
        seed: 0xB07704,
    }
}

/// Lee County property tax: clean grid tables.
pub fn lee() -> SiteSpec {
    SiteSpec {
        name: "Lee County".into(),
        domain: Domain::PropertyTax,
        layout: LayoutStyle::GridTable,
        records_per_page: vec![16, 5],
        quirks: vec![],
        missing_field_prob: 0.05,
        continuous_numbering: false,
        overlap: 0,
        seed: 0x1EE005,
    }
}

/// Michigan Corrections: the "Parole"/"Parolee" inconsistency with the
/// list value appearing in an unrelated context.
pub fn michigan() -> SiteSpec {
    SiteSpec {
        name: "Michigan Corrections".into(),
        domain: Domain::Corrections,
        layout: LayoutStyle::GridTable,
        records_per_page: vec![7, 16],
        quirks: vec![
            Quirk::ValueInUnrelatedContext { field: "status" },
            Quirk::QueryEcho { field: "facility" },
        ],
        missing_field_prob: 0.05,
        continuous_numbering: false,
        overlap: 0,
        seed: 0x3C4106,
    }
}

/// Minnesota Corrections: numbered entries plus a list/detail case
/// mismatch.
pub fn minnesota() -> SiteSpec {
    SiteSpec {
        name: "Minnesota Corrections".into(),
        domain: Domain::Corrections,
        layout: LayoutStyle::NumberedList,
        records_per_page: vec![11, 19],
        quirks: vec![
            Quirk::CaseMismatch { field: "status" },
            Quirk::QueryEcho { field: "facility" },
        ],
        missing_field_prob: 0.05,
        continuous_numbering: false,
        overlap: 0,
        seed: 0x3A4107,
    }
}

/// Ohio Corrections: clean grid tables.
pub fn ohio() -> SiteSpec {
    SiteSpec {
        name: "Ohio Corrections".into(),
        domain: Domain::Corrections,
        layout: LayoutStyle::GridTable,
        records_per_page: vec![10, 10],
        quirks: vec![],
        missing_field_prob: 0.05,
        continuous_numbering: false,
        overlap: 0,
        seed: 0x041008,
    }
}

/// Canada411: free-form white pages where all results share a town and one
/// record's detail page omits it.
pub fn canada411() -> SiteSpec {
    SiteSpec {
        name: "Canada 411".into(),
        domain: Domain::WhitePages,
        layout: LayoutStyle::FreeForm,
        records_per_page: vec![25, 5],
        quirks: vec![Quirk::SharedValueMissingOnDetail { field: "city" }],
        missing_field_prob: 0.05,
        continuous_numbering: false,
        overlap: 0,
        seed: 0xCA4109,
    }
}

/// SprintCanada: clean grid-table white pages.
pub fn sprint_canada() -> SiteSpec {
    SiteSpec {
        name: "Sprint Canada".into(),
        domain: Domain::WhitePages,
        layout: LayoutStyle::GridTable,
        records_per_page: vec![20, 20],
        quirks: vec![],
        missing_field_prob: 0.1,
        continuous_numbering: false,
        overlap: 0,
        seed: 0x5B0A10,
    }
}

/// Yahoo People: free-form white pages; overlapping query results pull
/// record data into the induced template (template failure).
pub fn yahoo_people() -> SiteSpec {
    SiteSpec {
        name: "Yahoo People".into(),
        domain: Domain::WhitePages,
        layout: LayoutStyle::FreeForm,
        records_per_page: vec![10, 10],
        quirks: vec![Quirk::QueryEcho { field: "city" }],
        missing_field_prob: 0.1,
        continuous_numbering: false,
        overlap: 4,
        seed: 0x7A0011,
    }
}

/// Superpages: free-form white pages with disjunctive formatting of
/// missing addresses; a tiny first result page plus overlap breaks the
/// template.
pub fn superpages() -> SiteSpec {
    SiteSpec {
        name: "Superpages".into(),
        domain: Domain::WhitePages,
        layout: LayoutStyle::FreeForm,
        records_per_page: vec![3, 15],
        quirks: vec![
            Quirk::DisjunctiveFormatting { field: "address" },
            Quirk::QueryEcho { field: "city" },
        ],
        missing_field_prob: 0.2,
        continuous_numbering: false,
        overlap: 1,
        seed: 0x50BE12,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::generate;

    #[test]
    fn twelve_sites_in_table4_order() {
        let sites = all();
        assert_eq!(sites.len(), 12);
        assert_eq!(sites[0].name, "Amazon Books");
        assert_eq!(sites[11].name, "Superpages");
        // Two list pages each, as in the paper.
        assert!(sites.iter().all(|s| s.records_per_page.len() == 2));
    }

    #[test]
    fn all_sites_generate() {
        for spec in all() {
            let site = generate(&spec);
            assert_eq!(site.pages.len(), 2, "{}", spec.name);
            for (p, page) in site.pages.iter().enumerate() {
                assert_eq!(
                    page.truth.len(),
                    spec.records_per_page[p],
                    "{} page {p}",
                    spec.name
                );
                assert_eq!(page.detail_html.len(), page.truth.len());
                assert!(page.list_html.len() > 500);
            }
        }
    }

    #[test]
    fn domains_cover_all_four() {
        use crate::domains::Domain;
        let sites = all();
        for d in Domain::ALL {
            assert!(sites.iter().any(|s| s.domain == d), "missing domain {d:?}");
        }
    }

    #[test]
    fn record_counts_match_table4() {
        let sites = all();
        let expected: &[(&str, [usize; 2])] = &[
            ("Amazon Books", [10, 10]),
            ("BN Books", [10, 10]),
            ("Allegheny County", [20, 20]),
            ("Butler County", [15, 12]),
            ("Lee County", [16, 5]),
            ("Michigan Corrections", [7, 16]),
            ("Minnesota Corrections", [11, 19]),
            ("Ohio Corrections", [10, 10]),
            ("Canada 411", [25, 5]),
            ("Sprint Canada", [20, 20]),
            ("Yahoo People", [10, 10]),
            ("Superpages", [3, 15]),
        ];
        for (spec, (name, counts)) in sites.iter().zip(expected) {
            assert_eq!(&spec.name, name);
            assert_eq!(spec.records_per_page, counts.to_vec());
        }
        // Total records across all pages: 309, the paper's corpus size.
        let total: usize = sites.iter().flat_map(|s| s.records_per_page.iter()).sum();
        assert_eq!(total, 309);
    }
}
