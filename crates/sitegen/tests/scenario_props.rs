//! Scenario property tests: the multi-table and nested generators under
//! arbitrary seeds, and the fault × scenario interaction matrix — every
//! chaos operator against every scenario page shape, with the detection
//! stage run over the damage.
//!
//! These live in `tableseg-sitegen` next to the chaos suite, with the
//! core pipeline pulled in as a dev-dependency (the reverse direction —
//! core depending on the simulator — would be a cycle).

use proptest::prelude::*;

use tableseg::html::lexer::tokenize;
use tableseg::{detect_regions, DetectOptions, RegionKind};
use tableseg_eval::classify::classify_spans;
use tableseg_sitegen::chaos::{apply_chaos, ChaosConfig, FaultKind};
use tableseg_sitegen::scenario::{
    detect_cohort, generate_multi_table, generate_nested, nested_cohort, MultiTableSite,
    NestedSite, RegionLabel,
};
use tableseg_sitegen::GeneratedSite;

fn multi_table_sites(seed: u64) -> Vec<MultiTableSite> {
    detect_cohort(seed)
        .iter()
        .map(generate_multi_table)
        .collect()
}

fn nested_sites(seed: u64) -> Vec<NestedSite> {
    nested_cohort(seed).iter().map(generate_nested).collect()
}

/// Every page (list and detail) of a flattened scenario site.
fn all_pages(site: &GeneratedSite) -> Vec<&str> {
    site.pages
        .iter()
        .flat_map(|p| {
            std::iter::once(p.list_html.as_str()).chain(p.detail_html.iter().map(String::as_str))
        })
        .collect()
}

#[test]
fn detection_recovers_every_truth_table_region() {
    // On clean multi-table pages the detector must find exactly the truth
    // table regions — one exclusive hit per truth table, no misses, no
    // spurious regions — and never pass through a page with two or more
    // tables.
    let opts = DetectOptions::default();
    for site in multi_table_sites(0x5EED) {
        for (p, page) in site.pages.iter().enumerate() {
            let detection = detect_regions(&tokenize(&page.list_html), &opts);
            let truth = page.table_region_spans();
            let pred: Vec<_> = detection.table_regions().map(|r| r.bytes.clone()).collect();
            let counts = classify_spans(&pred, &truth);
            assert_eq!(
                counts.cor,
                truth.len(),
                "{} page {p}: {counts:?}",
                site.spec.name
            );
            assert_eq!(counts.incor + counts.fneg + counts.fpos, 0, "{counts:?}");
            assert_eq!(
                detection.pass_through,
                truth.len() <= 1,
                "{}",
                site.spec.name
            );
        }
    }
}

#[test]
fn noise_regions_are_never_classified_as_tables() {
    // Nav bars and footers must land as Navigation, ad blocks must not
    // become table regions — over the whole cohort.
    let opts = DetectOptions::default();
    for site in multi_table_sites(0xA5) {
        for page in &site.pages {
            let detection = detect_regions(&tokenize(&page.list_html), &opts);
            if detection.pass_through {
                continue; // whole-page region, noise not individually classified
            }
            for truth in &page.regions {
                if truth.label == RegionLabel::Table {
                    continue;
                }
                // Any detected region overlapping this noise span must
                // not be a table.
                for region in &detection.regions {
                    let overlaps = region.bytes.start < truth.end && truth.start < region.bytes.end;
                    if overlaps {
                        assert_ne!(
                            region.kind,
                            RegionKind::Table,
                            "{}: {:?} region detected as a table",
                            site.spec.name,
                            truth.label
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn chaos_interaction_matrix_keeps_scenarios_processable() {
    // Every fault kind alone at p=1 against both scenario shapes: the
    // damaged pages must tokenize with sane offsets, surviving truth
    // spans must stay in bounds on char boundaries, and the detection
    // stage must stay total (no panic) on the damage.
    let opts = DetectOptions::default();
    let flats: Vec<(&str, GeneratedSite)> = multi_table_sites(0xFA)
        .iter()
        .map(|s| ("multi-table", s.as_generated_site()))
        .chain(
            nested_sites(0xFA)
                .iter()
                .map(|s| ("nested", s.as_generated_site())),
        )
        .collect();
    for (shape, clean) in &flats {
        for kind in FaultKind::ALL {
            let (site, log) = apply_chaos(clean, &ChaosConfig::only(kind, 1.0, 0xFEED));
            assert!(!log.is_empty(), "{shape}/{kind:?} must fire at p=1");
            for html in all_pages(&site) {
                let tokens = tokenize(html);
                for t in &tokens {
                    assert!(t.offset < html.len().max(1), "{shape}/{kind:?}: {t:?}");
                }
                let detection = detect_regions(&tokens, &opts);
                assert!(!detection.regions.is_empty() || tokens.is_empty());
            }
            for page in &site.pages {
                for span in &page.truth.records {
                    assert!(span.end <= page.list_html.len(), "{shape}/{kind:?}");
                    assert!(
                        page.list_html.is_char_boundary(span.start),
                        "{shape}/{kind:?}"
                    );
                    assert!(
                        page.list_html.is_char_boundary(span.end),
                        "{shape}/{kind:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn zero_probability_chaos_is_identity_on_scenario_sites() {
    for site in multi_table_sites(0x1D) {
        let flat = site.as_generated_site();
        let (wrapped, log) = apply_chaos(&flat, &ChaosConfig::uniform(0.0, 0xC0DE));
        assert!(log.is_empty());
        assert_eq!(wrapped, flat, "{}", site.spec.name);
    }
    for site in nested_sites(0x1D) {
        let flat = site.as_generated_site();
        let (wrapped, log) = apply_chaos(&flat, &ChaosConfig::uniform(0.0, 0xC0DE));
        assert!(log.is_empty());
        assert_eq!(wrapped, flat, "{}", site.spec.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Generation is a pure function of the spec for any seed.
    #[test]
    fn scenario_generation_is_deterministic(seed in any::<u64>()) {
        prop_assert_eq!(multi_table_sites(seed), multi_table_sites(seed));
        prop_assert_eq!(nested_sites(seed), nested_sites(seed));
    }

    /// Region and record spans are well-formed at any seed: in bounds,
    /// ordered, disjoint, records inside their table region, sub-records
    /// inside their parent.
    #[test]
    fn scenario_truth_is_well_formed(seed in any::<u64>()) {
        for site in multi_table_sites(seed) {
            for page in &site.pages {
                for w in page.regions.windows(2) {
                    prop_assert!(w[0].end <= w[1].start);
                }
                for region in &page.regions {
                    prop_assert!(region.end <= page.list_html.len());
                }
                for (t, truth) in page.tables.iter().enumerate() {
                    let region = page
                        .regions
                        .iter()
                        .find(|r| r.table == Some(t))
                        .expect("table region");
                    for span in &truth.records {
                        prop_assert!(span.start >= region.start && span.end <= region.end);
                    }
                }
            }
        }
        for site in nested_sites(seed) {
            for page in &site.pages {
                for parent in &page.truth.parents {
                    prop_assert!(parent.span.end <= page.list_html.len());
                    for sub in &parent.subs {
                        prop_assert!(sub.start >= parent.span.start);
                        prop_assert!(sub.end <= parent.span.end);
                    }
                    for w in parent.subs.windows(2) {
                        prop_assert!(w[0].end <= w[1].start);
                    }
                }
            }
        }
    }

    /// Detection recovers the right number of table regions at any data
    /// seed — region detection does not depend on the random record
    /// values, only on the layout the spec fixes.
    #[test]
    fn detection_region_count_is_seed_invariant(seed in any::<u64>()) {
        let opts = DetectOptions::default();
        for site in multi_table_sites(seed) {
            for page in &site.pages {
                let detection = detect_regions(&tokenize(&page.list_html), &opts);
                let tables = detection.table_regions().count();
                let expected = if page.table_region_spans().len() <= 1 {
                    1 // pass-through: one whole-page region
                } else {
                    page.table_region_spans().len()
                };
                prop_assert_eq!(tables, expected, "{}", &site.spec.name);
            }
        }
    }
}
