//! Integration tests for the crawlable site map and the link structure of
//! generated pages.

use tableseg_html::lexer::tokenize;
use tableseg_html::links::extract_links;
use tableseg_sitegen::paper_sites;
use tableseg_sitegen::site::generate;

#[test]
fn site_map_contains_all_pages() {
    let site = generate(&paper_sites::butler());
    let map = site.site_map(2);
    assert!(map.contains_key("/list/0"));
    assert!(map.contains_key("/list/1"));
    assert!(map.contains_key("/ads/0"));
    assert!(map.contains_key("/ads/1"));
    for (p, page) in site.pages.iter().enumerate() {
        for i in 0..page.detail_html.len() {
            assert!(map.contains_key(&format!("/detail/{p}/{i}")));
        }
    }
    let expected = 2 // list pages
        + site.pages.iter().map(|p| p.detail_html.len()).sum::<usize>()
        + 2; // ads
    assert_eq!(map.len(), expected);
}

#[test]
fn every_record_links_its_detail_page_in_order() {
    for spec in [
        paper_sites::butler(),     // grid table
        paper_sites::superpages(), // free form
        paper_sites::bn_books(),   // numbered list
    ] {
        let site = generate(&spec);
        for (p, page) in site.pages.iter().enumerate() {
            let links = extract_links(&tokenize(&page.list_html));
            let detail_links: Vec<&str> = links
                .iter()
                .filter(|l| l.href.starts_with("/detail/"))
                .map(|l| l.href.as_str())
                .collect();
            let expected: Vec<String> = (0..page.detail_html.len())
                .map(|i| format!("/detail/{p}/{i}"))
                .collect();
            assert_eq!(
                detail_links,
                expected.iter().map(String::as_str).collect::<Vec<_>>(),
                "{} page {p}",
                spec.name
            );
        }
    }
}

#[test]
fn list_pages_chain_via_next_links() {
    let site = generate(&paper_sites::ohio());
    let links = extract_links(&tokenize(&site.pages[0].list_html));
    assert!(links
        .iter()
        .any(|l| l.href == "/list/1" && l.text == "Next"));
    let links = extract_links(&tokenize(&site.pages[1].list_html));
    assert!(
        links.iter().any(|l| l.href == "/list/2"),
        "dangling next is fine"
    );
}

#[test]
fn ad_links_present_on_every_list_page() {
    let site = generate(&paper_sites::allegheny());
    for page in &site.pages {
        let links = extract_links(&tokenize(&page.list_html));
        assert!(links.iter().any(|l| l.href == "/ads/0"));
        assert!(links.iter().any(|l| l.href == "/ads/1"));
    }
}

#[test]
fn generated_pages_parse_into_dom() {
    // Every generated page must survive a DOM round trip (well-formedness
    // smoke test over all twelve sites).
    for spec in paper_sites::all() {
        let site = generate(&spec);
        for page in &site.pages {
            let dom = tableseg_html::dom::parse(&page.list_html);
            assert!(
                dom.text_token_count() > 20,
                "{}: list page too empty",
                spec.name
            );
            for d in &page.detail_html {
                let dom = tableseg_html::dom::parse(d);
                assert!(
                    dom.text_token_count() > 5,
                    "{}: thin detail page",
                    spec.name
                );
            }
        }
    }
}

#[test]
fn truth_values_visible_in_dom_text() {
    let site = generate(&paper_sites::sprint_canada());
    for page in &site.pages {
        let dom = tableseg_html::dom::parse(&page.list_html);
        let text = dom.text_content();
        for span in &page.truth.records {
            for value in &span.values {
                // DOM text joins tokens with spaces; compare whitespace-free.
                let squash = |s: &str| s.chars().filter(|c| !c.is_whitespace()).collect::<String>();
                assert!(squash(&text).contains(&squash(value)), "missing {value:?}");
            }
        }
    }
}
