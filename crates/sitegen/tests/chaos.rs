//! Chaos-layer integration and property tests: every corruption operator
//! applied to real generated pages must leave the downstream tokenizer
//! total (no panic, guaranteed termination) and keep ground truth
//! well-formed. These tests live in `tableseg-sitegen` (not
//! `tableseg-html`) because the html crate cannot dev-depend on the
//! simulator without a dependency cycle.

use proptest::prelude::*;

use tableseg_html::lexer::{tokenize, tokenize_bytes, tokenize_bytes_flagged};
use tableseg_html::scan;
use tableseg_sitegen::chaos::{apply_chaos, generate_chaotic, ChaosConfig, FaultKind};
use tableseg_sitegen::paper_sites;
use tableseg_sitegen::site::generate;
use tableseg_sitegen::{Universe, UniverseConfig};

/// Every page (list and detail) of a chaos-damaged site.
fn all_pages(site: &tableseg_sitegen::GeneratedSite) -> Vec<&str> {
    site.pages
        .iter()
        .flat_map(|p| {
            std::iter::once(p.list_html.as_str()).chain(p.detail_html.iter().map(String::as_str))
        })
        .collect()
}

#[test]
fn every_operator_leaves_pages_tokenizable() {
    // Each fault kind alone at p=1, over several real site generators:
    // the damaged HTML must tokenize without panicking and with sane
    // offsets. This is the tokenizer-vs-corruption contract the pipeline
    // relies on.
    let specs = [paper_sites::butler(), paper_sites::amazon()];
    for spec in &specs {
        for kind in FaultKind::ALL {
            let (site, log) = generate_chaotic(spec, &ChaosConfig::only(kind, 1.0, 0xFEED));
            assert!(!log.is_empty(), "{kind:?} on {}", spec.name);
            for html in all_pages(&site) {
                let tokens = tokenize(html);
                for t in &tokens {
                    assert!(!t.text.is_empty());
                    assert!(t.offset < html.len().max(1), "{kind:?}: {t:?}");
                }
            }
        }
    }
}

#[test]
fn stacked_chaos_keeps_pages_tokenizable_across_seeds() {
    let spec = paper_sites::ohio();
    let clean = generate(&spec);
    for seed in 0..8u64 {
        let (site, _) = apply_chaos(&clean, &ChaosConfig::uniform(0.7, seed));
        for html in all_pages(&site) {
            // Termination + no panic; byte path too (encoding damage).
            let a = tokenize(html);
            let b = tokenize_bytes(html.as_bytes());
            assert_eq!(a.len(), b.len(), "seed {seed}");
        }
    }
}

#[test]
fn zero_copy_scan_matches_lexer_on_every_fault_kind() {
    // The span lexer must stay token-for-token identical to the
    // allocating oracle on damaged pages, not just clean ones: each
    // fault kind alone at p=1, then heavy stacked chaos across seeds.
    let specs = [paper_sites::butler(), paper_sites::amazon()];
    for spec in &specs {
        for kind in FaultKind::ALL {
            let (site, _) = generate_chaotic(spec, &ChaosConfig::only(kind, 1.0, 0xFEED));
            for html in all_pages(&site) {
                assert_eq!(
                    scan(html).to_tokens(html),
                    tokenize(html),
                    "{kind:?} on {}",
                    spec.name
                );
            }
        }
    }
    let clean = generate(&paper_sites::ohio());
    for seed in 0..4u64 {
        let (site, _) = apply_chaos(&clean, &ChaosConfig::uniform(0.7, seed));
        for html in all_pages(&site) {
            assert_eq!(scan(html).to_tokens(html), tokenize(html), "seed {seed}");
        }
    }
}

#[test]
fn zero_copy_scan_matches_lexer_on_universe_sites() {
    // A slice of the procedural universe, faults armed: the mega-corpus
    // generator cannot produce a page the two front ends disagree on.
    let u = Universe::new(UniverseConfig {
        sites: 12,
        fault_rate: 0.2,
        ..UniverseConfig::default()
    });
    for site in u.sites() {
        for html in all_pages(&site) {
            assert_eq!(scan(html).to_tokens(html), tokenize(html));
        }
    }
}

#[test]
fn truncated_multibyte_page_reports_lossy_decode() {
    // Regression for the `tokenize_bytes` offset caveat: slicing a page
    // mid-multibyte-character must set the `decoded` flag, because the
    // lossy decode rewrites the invalid tail to U+FFFD and token offsets
    // then index the *decoded* text, not the input bytes.
    // EncodingDamage at p=1 plants multibyte U+FFFD characters in every
    // page — the canonical truncated-multibyte chaos page.
    let (site, log) = generate_chaotic(
        &paper_sites::amazon(),
        &ChaosConfig::only(FaultKind::EncodingDamage, 1.0, 0xFEED),
    );
    assert!(!log.is_empty());
    let html = site
        .pages
        .iter()
        .map(|p| &p.list_html)
        .find(|h| h.chars().any(|c| c.len_utf8() > 1))
        .expect("encoding damage plants multibyte characters");
    let multibyte = html
        .char_indices()
        .find(|&(_, c)| c.len_utf8() > 1)
        .map(|(i, _)| i);
    // Cut one byte into the first multibyte character.
    let cut = multibyte.expect("page carries multibyte characters") + 1;
    let truncated = &html.as_bytes()[..cut];
    assert!(
        std::str::from_utf8(truncated).is_err(),
        "cut must land mid-character"
    );

    let flagged = tokenize_bytes_flagged(truncated);
    assert!(flagged.decoded, "lossy decode must be reported");
    // Offsets are valid in the decoded text: each token is findable at
    // its recorded offset of the decoded string.
    let decoded = String::from_utf8_lossy(truncated).into_owned();
    assert!(decoded.ends_with('\u{FFFD}'));
    for t in &flagged.tokens {
        assert!(t.offset <= decoded.len(), "{t:?}");
    }
    // The clean prefix (everything before the cut character) is
    // untouched, so there `decoded` stays false and offsets are byte
    // offsets into the input.
    let clean_prefix = &html.as_bytes()[..cut - 1];
    let clean = tokenize_bytes_flagged(clean_prefix);
    assert!(!clean.decoded);
    assert_eq!(
        clean.tokens,
        tokenize(std::str::from_utf8(clean_prefix).unwrap())
    );
}

#[test]
fn truth_values_survive_where_rows_survive() {
    // After chaos, every surviving truth span must still hold bytes the
    // evaluation can align: in-bounds and on char boundaries.
    let clean = generate(&paper_sites::lee());
    for seed in 0..10u64 {
        let (site, _) = apply_chaos(&clean, &ChaosConfig::uniform(0.5, seed));
        for page in &site.pages {
            for span in &page.truth.records {
                assert!(span.end <= page.list_html.len());
                assert!(page.list_html.is_char_boundary(span.start), "{span:?}");
                assert!(page.list_html.is_char_boundary(span.end), "{span:?}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any (probability, seed) pair produces a site whose every page
    /// tokenizes — the chaos layer cannot construct HTML the front end
    /// chokes on, no matter the knobs.
    #[test]
    fn arbitrary_chaos_is_always_tokenizable(p in 0.0f64..1.0, seed in any::<u64>()) {
        let (site, _) = generate_chaotic(
            &paper_sites::butler(),
            &ChaosConfig::uniform(p, seed),
        );
        for html in all_pages(&site) {
            let _ = tokenize(html);
        }
    }

    /// Chaos is a pure function of (site seed, chaos seed, probability).
    #[test]
    fn chaos_is_deterministic(p in 0.0f64..1.0, seed in any::<u64>()) {
        let cfg = ChaosConfig::uniform(p, seed);
        let a = generate_chaotic(&paper_sites::ohio(), &cfg);
        let b = generate_chaotic(&paper_sites::ohio(), &cfg);
        prop_assert_eq!(a, b);
    }
}
