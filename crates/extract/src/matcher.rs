//! Matching extracts against pages, ignoring intervening separators.
//!
//! Footnote 1 of the paper: "The string matching algorithm ignores
//! intervening separators on detail pages. For example, a string
//! `FirstName LastName` on list page will be matched to
//! `FirstName <br>LastName` on the detail page."
//!
//! Both the extract and the page are reduced to their non-separator tokens;
//! a match is a contiguous run in the reduced page stream. Matching is
//! case-sensitive: the paper reports that a case mismatch between list and
//! detail pages (Minnesota Corrections) breaks matching, and we want to
//! reproduce that behaviour faithfully.
//!
//! Two implementations coexist:
//!
//! * [`PageIndex`] — the production path. The reduced stream is interned
//!   to [`Symbol`]s and indexed by first symbol, so a needle is verified
//!   only at the positions where its first token actually occurs; each
//!   comparison is one integer compare and page text is never cloned.
//! * [`MatchStream`] — the original clone-and-scan string matcher, kept as
//!   the differential-test **oracle** (see `tests/extract_props.rs`) and
//!   as the reference semantics for the indexed path.

use tableseg_html::{Interner, Symbol, Token, UNKNOWN_SYMBOL};

use crate::separator::{is_separator, SeparatorMask};

/// A page reduced to its non-separator tokens, the form in which extract
/// matching is performed. Construction is O(page length); each match query
/// is a naive linear scan of the whole reduced stream.
///
/// This is the **oracle** implementation: simple enough to trust, used by
/// the property tests to validate [`PageIndex`], which must return exactly
/// the same positions. Production code goes through [`PageIndex`].
#[derive(Debug, Clone)]
pub struct MatchStream {
    texts: Vec<String>,
}

impl MatchStream {
    /// Builds the match stream of a page.
    pub fn new(tokens: &[Token]) -> MatchStream {
        MatchStream {
            texts: tokens
                .iter()
                .filter(|t| !is_separator(t))
                .map(|t| t.text.clone())
                .collect(),
        }
    }

    /// Number of matchable tokens.
    pub fn len(&self) -> usize {
        self.texts.len()
    }

    /// True if the page has no matchable tokens.
    pub fn is_empty(&self) -> bool {
        self.texts.is_empty()
    }

    /// The token texts.
    pub fn texts(&self) -> &[String] {
        &self.texts
    }

    /// All starting positions (token number within this reduced stream) at
    /// which `needle` occurs as a contiguous run.
    pub fn find_all(&self, needle: &[&str]) -> Vec<usize> {
        if needle.is_empty() || needle.len() > self.texts.len() {
            return Vec::new();
        }
        let mut out = Vec::new();
        'outer: for start in 0..=self.texts.len() - needle.len() {
            for (k, &n) in needle.iter().enumerate() {
                if self.texts[start + k] != n {
                    continue 'outer;
                }
            }
            out.push(start);
        }
        out
    }

    /// Returns `true` if `needle` occurs at least once.
    pub fn contains(&self, needle: &[&str]) -> bool {
        !self.find_all(needle).is_empty()
    }
}

/// A page reduced to its non-separator **symbols**, with an occurrence
/// index: `occ` holds every `(symbol, position)` pair of the reduced
/// stream, sorted, so the positions of a symbol are one binary search
/// away (and ascend within the run).
///
/// Matching a needle locates the run of its first symbol and verifies
/// the rest symbol-by-symbol, so a page is scanned once at construction
/// and never again — all of a list page's extracts are matched against
/// the page in one pass over it. The flat sorted layout costs a single
/// allocation per page (detail pages are indexed per segmentation call,
/// so per-symbol bucket allocations would dominate on small pages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageIndex {
    syms: Vec<Symbol>,
    occ: Vec<(Symbol, u32)>,
}

impl PageIndex {
    /// Builds the index of a page by reducing its token stream and mapping
    /// each text through `interner` **read-only** (texts the interner has
    /// never seen become [`UNKNOWN_SYMBOL`], which matches nothing).
    pub fn build(tokens: &[Token], interner: &Interner) -> PageIndex {
        let mut syms = Vec::with_capacity(tokens.len());
        for t in tokens {
            if !is_separator(t) {
                syms.push(interner.lookup(&t.text).unwrap_or(UNKNOWN_SYMBOL));
            }
        }
        PageIndex::from_symbols(syms)
    }

    /// Builds the index of a zero-copy scanned page in one pass: each
    /// span is resolved against the page, separator-reduced, and
    /// projected read-only through `interner` — no owned token stream is
    /// ever materialized. Equivalent to
    /// `PageIndex::build(&scanned.to_tokens(input), interner)`.
    pub fn from_scanned(
        scanned: &tableseg_html::ScanTokens,
        input: &str,
        interner: &Interner,
    ) -> PageIndex {
        let mut syms = Vec::with_capacity(scanned.len());
        for (text, types, _) in scanned.iter(input) {
            if !crate::separator::is_separator_parts(text, types) {
                syms.push(interner.lookup(text).unwrap_or(UNKNOWN_SYMBOL));
            }
        }
        PageIndex::from_symbols(syms)
    }

    /// Builds the index of an already-interned page stream, reducing it
    /// with the per-symbol separator mask (no string work at all).
    pub fn from_interned(syms: &[Symbol], mask: &SeparatorMask) -> PageIndex {
        let mut reduced = Vec::with_capacity(syms.len());
        for &s in syms {
            if !mask.is_separator(s) {
                reduced.push(s);
            }
        }
        PageIndex::from_symbols(reduced)
    }

    /// Builds the index over a pre-reduced symbol stream.
    pub fn from_symbols(syms: Vec<Symbol>) -> PageIndex {
        let mut occ: Vec<(Symbol, u32)> = Vec::with_capacity(syms.len());
        for (i, &s) in syms.iter().enumerate() {
            if s != UNKNOWN_SYMBOL {
                occ.push((s, i as u32));
            }
        }
        occ.sort_unstable();
        PageIndex { syms, occ }
    }

    /// Number of matchable tokens.
    pub fn len(&self) -> usize {
        self.syms.len()
    }

    /// True if the page has no matchable tokens.
    pub fn is_empty(&self) -> bool {
        self.syms.is_empty()
    }

    /// The reduced symbol stream.
    pub fn symbols(&self) -> &[Symbol] {
        &self.syms
    }

    /// All starting positions (token number within the reduced stream) at
    /// which `needle` occurs as a contiguous run, ascending — exactly the
    /// positions [`MatchStream::find_all`] reports for the needle's texts.
    pub fn find_all(&self, needle: &[Symbol]) -> Vec<u32> {
        let mut out = Vec::new();
        self.for_each_match(needle, |pos| {
            out.push(pos);
            true
        });
        out
    }

    /// Returns `true` if `needle` occurs at least once (early exit).
    pub fn contains(&self, needle: &[Symbol]) -> bool {
        let mut found = false;
        self.for_each_match(needle, |_| {
            found = true;
            false
        });
        found
    }

    /// Calls `hit` with each starting position of `needle`, ascending —
    /// [`PageIndex::find_all`] without the intermediate allocation, for
    /// callers accumulating hits across many pages. `hit` returns whether
    /// to keep scanning.
    pub fn for_each_match(&self, needle: &[Symbol], mut hit: impl FnMut(u32) -> bool) {
        if needle.is_empty() || needle.len() > self.syms.len() || needle.contains(&UNKNOWN_SYMBOL) {
            return;
        }
        let first = needle[0];
        let lo = self.occ.partition_point(|&(s, _)| s < first);
        let limit = (self.syms.len() - needle.len()) as u32;
        for &(s, start) in &self.occ[lo..] {
            if s != first || start > limit {
                // The run is sorted: past the first symbol's occurrences,
                // or past the last position the needle can fit, no later
                // entry matches either.
                break;
            }
            let at = start as usize + 1;
            // Slice equality over symbols compiles to a memcmp.
            if self.syms[at..at + needle.len() - 1] == needle[1..] && !hit(start) {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tableseg_html::lexer::tokenize;

    fn stream(html: &str) -> MatchStream {
        MatchStream::new(&tokenize(html))
    }

    /// Interner over the needle + index over the page, the way production
    /// code pairs them.
    fn indexed(needle_html: &str, page_html: &str) -> (Vec<Symbol>, PageIndex) {
        let mut interner = Interner::new();
        let needle: Vec<Symbol> = tokenize(needle_html)
            .iter()
            .filter(|t| !is_separator(t))
            .map(|t| interner.intern_token(t))
            .collect();
        let index = PageIndex::build(&tokenize(page_html), &interner);
        (needle, index)
    }

    #[test]
    fn ignores_intervening_tags() {
        // The paper's footnote example.
        let s = stream("FirstName <br>LastName");
        assert!(s.contains(&["FirstName", "LastName"]));
        let (needle, index) = indexed("FirstName LastName", "FirstName <br>LastName");
        assert!(index.contains(&needle));
    }

    #[test]
    fn ignores_intervening_special_punctuation() {
        let s = stream("Name: John | Smith");
        assert!(s.contains(&["John", "Smith"]));
        let (needle, index) = indexed("John Smith", "Name: John | Smith");
        assert!(index.contains(&needle));
    }

    #[test]
    fn preserves_allowed_punctuation() {
        let s = stream("(740) 335-5555");
        assert!(s.contains(&["(", "740", ")", "335", "-", "5555"]));
        assert!(!s.contains(&["740", "335", "5555"]));
        let (needle, index) = indexed("(740) 335-5555", "(740) 335-5555");
        assert!(index.contains(&needle));
        let (needle, index) = indexed("740 335 5555", "(740) 335-5555");
        assert!(!index.contains(&needle));
    }

    #[test]
    fn case_sensitive() {
        let s = stream("PAROLE");
        assert!(!s.contains(&["Parole"]));
        assert!(s.contains(&["PAROLE"]));
        let (needle, index) = indexed("Parole", "PAROLE");
        assert!(!index.contains(&needle));
        let (needle, index) = indexed("PAROLE", "PAROLE");
        assert!(index.contains(&needle));
    }

    #[test]
    fn find_all_positions() {
        let s = stream("a b a b a");
        assert_eq!(s.find_all(&["a", "b"]), vec![0, 2]);
        assert_eq!(s.find_all(&["a"]), vec![0, 2, 4]);
        assert_eq!(s.find_all(&["b", "a"]), vec![1, 3]);

        let (needle, index) = indexed("a b", "a b a b a");
        assert_eq!(index.find_all(&needle), vec![0, 2]);
        assert_eq!(index.find_all(&needle[..1]), vec![0, 2, 4]);
        let (needle, index) = indexed("b a", "a b a b a");
        assert_eq!(index.find_all(&needle), vec![1, 3]);
    }

    #[test]
    fn needle_longer_than_page() {
        let s = stream("x");
        assert!(s.find_all(&["x", "y"]).is_empty());
        assert!(s.find_all(&[]).is_empty());

        let (needle, index) = indexed("x y", "x");
        assert!(index.find_all(&needle).is_empty());
        assert!(index.find_all(&[]).is_empty());
        assert!(!index.contains(&[]));
    }

    #[test]
    fn positions_index_reduced_stream() {
        // Tags do not count towards positions.
        let s = stream("<html><body>first <b>second</b></body>");
        assert_eq!(s.find_all(&["second"]), vec![1]);
        let (needle, index) = indexed("second", "<html><body>first <b>second</b></body>");
        assert_eq!(index.find_all(&needle), vec![1]);
    }

    #[test]
    fn empty_page() {
        let s = stream("<br><td></td>");
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(!s.contains(&["x"]));

        let (needle, index) = indexed("x", "<br><td></td>");
        assert!(index.is_empty());
        assert_eq!(index.len(), 0);
        assert!(!index.contains(&needle));
    }

    #[test]
    fn unknown_symbols_never_match() {
        let mut interner = Interner::new();
        let needle = vec![interner.intern("known")];
        // Page tokens were never interned → all UNKNOWN_SYMBOL.
        let index = PageIndex::build(&tokenize("mystery words here"), &interner);
        assert_eq!(index.len(), 3, "unknown tokens still occupy positions");
        assert!(index.find_all(&needle).is_empty());
        // A needle containing the sentinel matches nothing either, even if
        // the page holds sentinel positions.
        assert!(index.find_all(&[UNKNOWN_SYMBOL]).is_empty());
    }

    #[test]
    fn from_interned_equals_build() {
        let html = "<td>John (740) 335-5555</td> ~ stuff";
        let toks = tokenize(html);
        let mut interner = Interner::new();
        let syms = interner.intern_tokens(&toks);
        let mask = SeparatorMask::build(&interner);
        let a = PageIndex::build(&toks, &interner);
        let b = PageIndex::from_interned(&syms, &mask);
        assert_eq!(a.symbols(), b.symbols());
    }

    #[test]
    fn from_scanned_equals_build() {
        // Known words come from the "list page"; the "detail page" mixes
        // known and unknown texts, separators, and an entity decode.
        let list = "<td>John (740) 335-5555</td>";
        let mut interner = Interner::new();
        interner.intern_tokens(&tokenize(list));
        for detail in [
            "<td>John AT&amp;T (740) 335-5555</td> ~ stuff",
            "unseen <TR>John</TR> 5555 | words",
            "",
            "~ | only separators <br>",
        ] {
            let toks = tokenize(detail);
            let a = PageIndex::build(&toks, &interner);
            let scanned = tableseg_html::scan(detail);
            let b = PageIndex::from_scanned(&scanned, detail, &interner);
            assert_eq!(a.symbols(), b.symbols(), "{detail:?}");
        }
    }
}
