//! Matching extracts against pages, ignoring intervening separators.
//!
//! Footnote 1 of the paper: "The string matching algorithm ignores
//! intervening separators on detail pages. For example, a string
//! `FirstName LastName` on list page will be matched to
//! `FirstName <br>LastName` on the detail page."
//!
//! Both the extract and the page are reduced to their non-separator token
//! texts; a match is a contiguous run in the reduced page stream. Matching
//! is case-sensitive: the paper reports that a case mismatch between list
//! and detail pages (Minnesota Corrections) breaks matching, and we want to
//! reproduce that behaviour faithfully.

use tableseg_html::Token;

use crate::separator::is_separator;

/// A page reduced to its non-separator tokens, the form in which extract
/// matching is performed. Construction is O(page length); each match query
/// is a linear scan (pages are small — thousands of tokens at most).
#[derive(Debug, Clone)]
pub struct MatchStream {
    texts: Vec<String>,
}

impl MatchStream {
    /// Builds the match stream of a page.
    pub fn new(tokens: &[Token]) -> MatchStream {
        MatchStream {
            texts: tokens
                .iter()
                .filter(|t| !is_separator(t))
                .map(|t| t.text.clone())
                .collect(),
        }
    }

    /// Number of matchable tokens.
    pub fn len(&self) -> usize {
        self.texts.len()
    }

    /// True if the page has no matchable tokens.
    pub fn is_empty(&self) -> bool {
        self.texts.is_empty()
    }

    /// The token texts.
    pub fn texts(&self) -> &[String] {
        &self.texts
    }

    /// All starting positions (token number within this reduced stream) at
    /// which `needle` occurs as a contiguous run.
    pub fn find_all(&self, needle: &[&str]) -> Vec<usize> {
        if needle.is_empty() || needle.len() > self.texts.len() {
            return Vec::new();
        }
        let mut out = Vec::new();
        'outer: for start in 0..=self.texts.len() - needle.len() {
            for (k, &n) in needle.iter().enumerate() {
                if self.texts[start + k] != n {
                    continue 'outer;
                }
            }
            out.push(start);
        }
        out
    }

    /// Returns `true` if `needle` occurs at least once.
    pub fn contains(&self, needle: &[&str]) -> bool {
        !self.find_all(needle).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tableseg_html::lexer::tokenize;

    fn stream(html: &str) -> MatchStream {
        MatchStream::new(&tokenize(html))
    }

    #[test]
    fn ignores_intervening_tags() {
        // The paper's footnote example.
        let s = stream("FirstName <br>LastName");
        assert!(s.contains(&["FirstName", "LastName"]));
    }

    #[test]
    fn ignores_intervening_special_punctuation() {
        let s = stream("Name: John | Smith");
        assert!(s.contains(&["John", "Smith"]));
    }

    #[test]
    fn preserves_allowed_punctuation() {
        let s = stream("(740) 335-5555");
        assert!(s.contains(&["(", "740", ")", "335", "-", "5555"]));
        assert!(!s.contains(&["740", "335", "5555"]));
    }

    #[test]
    fn case_sensitive() {
        let s = stream("PAROLE");
        assert!(!s.contains(&["Parole"]));
        assert!(s.contains(&["PAROLE"]));
    }

    #[test]
    fn find_all_positions() {
        let s = stream("a b a b a");
        assert_eq!(s.find_all(&["a", "b"]), vec![0, 2]);
        assert_eq!(s.find_all(&["a"]), vec![0, 2, 4]);
        assert_eq!(s.find_all(&["b", "a"]), vec![1, 3]);
    }

    #[test]
    fn needle_longer_than_page() {
        let s = stream("x");
        assert!(s.find_all(&["x", "y"]).is_empty());
        assert!(s.find_all(&[]).is_empty());
    }

    #[test]
    fn positions_index_reduced_stream() {
        // Tags do not count towards positions.
        let s = stream("<html><body>first <b>second</b></body>");
        assert_eq!(s.find_all(&["second"]), vec![1]);
    }

    #[test]
    fn empty_page() {
        let s = stream("<br><td></td>");
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(!s.contains(&["x"]));
    }
}
