//! Position analysis (Section 4.2, Table 3 of the paper).
//!
//! "Detail pages present another source of constraints ... no two extracts
//! assigned to the same record can appear in the same position on that
//! page. The corollary is: if two extracts appear in the same position on
//! the detail page, they must be assigned to different records."
//!
//! (The formal statement in the paper reads `pos_j(E_i) ≠ pos_j(E_k)`;
//! from the worked example — `x₁₁ + x₅₁ = 1` for the two "John Smith"
//! extracts observed at the *same* position 730 of page r₁ — the intended
//! condition is clearly *equality* of positions, and that is what this
//! module implements.)

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::observations::Observations;

/// A set of extracts observed at the same position of the same detail page.
/// A page position holds one field occurrence, so exactly one of the
/// extracts in the group can be the one assigned to that page's record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PositionGroup {
    /// Detail-page index.
    pub page: u32,
    /// Token position within the page's reduced stream.
    pub pos: u32,
    /// Indices (into `Observations::items`) of the extracts observed there,
    /// in ascending order. Always at least 2 entries.
    pub extracts: Vec<usize>,
}

/// Finds all positions shared by two or more extracts.
pub fn position_groups(obs: &Observations) -> Vec<PositionGroup> {
    let mut by_pos: HashMap<(u32, u32), Vec<usize>> = HashMap::new();
    for (i, item) in obs.items.iter().enumerate() {
        for pp in &item.positions {
            by_pos.entry((pp.page, pp.pos)).or_default().push(i);
        }
    }
    let mut groups: Vec<PositionGroup> = by_pos
        .into_iter()
        .filter(|(_, v)| v.len() >= 2)
        .map(|((page, pos), mut extracts)| {
            extracts.sort_unstable();
            extracts.dedup();
            PositionGroup {
                page,
                pos,
                extracts,
            }
        })
        .filter(|g| g.extracts.len() >= 2)
        .collect();
    groups.sort_by_key(|g| (g.page, g.pos));
    groups
}

/// Renders position observations in the format of the paper's Table 3:
/// one row per `(page, position)`, marking which extracts were seen there.
pub fn render_table(obs: &Observations) -> String {
    let mut rows: Vec<(u32, u32, Vec<usize>)> = {
        let mut by_pos: HashMap<(u32, u32), Vec<usize>> = HashMap::new();
        for (i, item) in obs.items.iter().enumerate() {
            for pp in &item.positions {
                by_pos.entry((pp.page, pp.pos)).or_default().push(i);
            }
        }
        by_pos
            .into_iter()
            .map(|((page, pos), v)| (page, pos, v))
            .collect()
    };
    rows.sort_by_key(|&(page, pos, _)| (page, pos));

    let n = obs.items.len();
    let mut out = String::new();
    out.push_str("| pos |");
    for i in 0..n {
        out.push_str(&format!(" E{} |", i + 1));
    }
    out.push('\n');
    for (page, pos, extracts) in rows {
        out.push_str(&format!("| pos_{}^{} |", page + 1, pos));
        for i in 0..n {
            if extracts.contains(&i) {
                out.push_str(" 1 |");
            } else {
                out.push_str("   |");
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observations::build_observations;
    use tableseg_html::{lexer::tokenize, Token};

    fn fixture() -> Observations {
        // Three records so that values shared by the first two records are
        // not on *all* detail pages (which would filter them out).
        let list = tokenize(
            "<td>John Smith</td><td>221 Washington</td><td>(740) 335-5555</td>\
             <td>John Smith</td><td>221R Washington</td><td>(740) 335-5555</td>\
             <td>George Major</td><td>Findlay, OH</td><td>(419) 423-1212</td>",
        );
        let d1 = tokenize("<h1>John Smith</h1><p>221 Washington</p><p>(740) 335-5555</p>");
        let d2 = tokenize("<h1>John Smith</h1><p>221R Washington</p><p>(740) 335-5555</p>");
        let d3 = tokenize("<h1>George Major</h1><p>Findlay, OH</p><p>(419) 423-1212</p>");
        let details: Vec<&[Token]> = vec![&d1, &d2, &d3];
        build_observations(&list, &[], &details)
    }

    #[test]
    fn shared_name_and_phone_form_groups() {
        let obs = fixture();
        let groups = position_groups(&obs);
        // "John Smith" at position 0 of pages r1 and r2 (extracts 0 & 3),
        // and the shared phone at position 4 of both pages (extracts 2 & 5).
        assert_eq!(groups.len(), 4);
        let name_group_p0 = groups
            .iter()
            .find(|g| g.page == 0 && g.pos == 0)
            .expect("name group on page 0");
        assert_eq!(name_group_p0.extracts, vec![0, 3]);
        let name_group_p1 = groups
            .iter()
            .find(|g| g.page == 1 && g.pos == 0)
            .expect("name group on page 1");
        assert_eq!(name_group_p1.extracts, vec![0, 3]);
        // Every group has >= 2 extracts.
        assert!(groups.iter().all(|g| g.extracts.len() >= 2));
    }

    #[test]
    fn unique_positions_form_no_group() {
        let list = tokenize("<td>Alpha</td><td>Beta</td>");
        let d1 = tokenize("<p>Alpha</p>");
        let d2 = tokenize("<p>Beta</p>");
        let details: Vec<&[Token]> = vec![&d1, &d2];
        let obs = build_observations(&list, &[], &details);
        assert!(position_groups(&obs).is_empty());
    }

    #[test]
    fn groups_sorted_by_page_then_pos() {
        let obs = fixture();
        let groups = position_groups(&obs);
        for w in groups.windows(2) {
            assert!((w[0].page, w[0].pos) < (w[1].page, w[1].pos));
        }
    }

    #[test]
    fn render_table_has_one_row_per_position() {
        let obs = fixture();
        let table = render_table(&obs);
        // Header plus one row per distinct (page, position).
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines.len() > 2);
        assert!(lines[0].contains("E1"));
        assert!(table.contains("pos_1^0"));
    }
}
