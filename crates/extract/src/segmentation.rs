//! The common output type of both segmentation algorithms: an assignment
//! of extracts to records (the paper's Table 2).

use serde::{Deserialize, Serialize};

use crate::observations::Observations;

/// An assignment of observation-table extracts to records.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segmentation {
    /// `K`: the number of records (detail pages).
    pub num_records: usize,
    /// For each kept extract (indexing `Observations::items`), the record
    /// it was assigned to, or `None` if it could not be assigned (partial
    /// solutions produced by relaxed constraints).
    pub assignments: Vec<Option<u32>>,
}

impl Segmentation {
    /// An empty segmentation with all extracts unassigned.
    pub fn unassigned(num_records: usize, num_extracts: usize) -> Segmentation {
        Segmentation {
            num_records,
            assignments: vec![None; num_extracts],
        }
    }

    /// Groups extract indices by record: `records()[j]` lists the extracts
    /// assigned to record `j`, in stream order.
    pub fn records(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.num_records];
        for (i, &a) in self.assignments.iter().enumerate() {
            if let Some(r) = a {
                out[r as usize].push(i);
            }
        }
        out
    }

    /// Number of assigned extracts.
    pub fn assigned_count(&self) -> usize {
        self.assignments.iter().filter(|a| a.is_some()).count()
    }

    /// Returns `true` if every extract is assigned.
    pub fn is_total(&self) -> bool {
        self.assignments.iter().all(Option::is_some)
    }

    /// Checks the paper's three structural constraints against an
    /// observation table. Returns the list of violations (empty = valid).
    pub fn check(&self, obs: &Observations) -> Vec<String> {
        let mut violations = Vec::new();
        if self.assignments.len() != obs.items.len() {
            violations.push(format!(
                "assignment length {} != {} extracts",
                self.assignments.len(),
                obs.items.len()
            ));
            return violations;
        }
        // Occurrence: E_i may only go to a record in D_i.
        for (i, &a) in self.assignments.iter().enumerate() {
            if let Some(r) = a {
                if !obs.items[i].on_page(r) {
                    violations.push(format!("E{} assigned to r{} not in its D_i", i + 1, r + 1));
                }
            }
        }
        // Consecutiveness: each record's extracts form a contiguous block.
        for (r, extracts) in self.records().iter().enumerate() {
            if let (Some(&first), Some(&last)) = (extracts.first(), extracts.last()) {
                if last - first + 1 != extracts.len() {
                    violations.push(format!("record r{} is not contiguous: {extracts:?}", r + 1));
                }
            }
        }
        violations
    }

    /// Renders the assignment in the format of the paper's Table 2.
    pub fn render_table(&self, obs: &Observations) -> String {
        let mut out = String::from("|    |");
        for (i, item) in obs.items.iter().enumerate() {
            out.push_str(&format!(" E{}: {} |", i + 1, item.extract.text()));
        }
        out.push('\n');
        for (r, extracts) in self.records().iter().enumerate() {
            if extracts.is_empty() {
                continue;
            }
            out.push_str(&format!("| r{} |", r + 1));
            for i in 0..obs.items.len() {
                out.push_str(if extracts.contains(&i) {
                    " 1 |"
                } else {
                    "   |"
                });
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observations::build_observations;
    use tableseg_html::{lexer::tokenize, Token};

    fn obs() -> Observations {
        let list = tokenize("<td>A</td><td>B</td><td>C</td><td>D</td>");
        let d1 = tokenize("<p>A</p><p>B</p>");
        let d2 = tokenize("<p>C</p><p>D</p>");
        let d3 = tokenize("<p>unrelated</p>");
        let details: Vec<&[Token]> = vec![&d1, &d2, &d3];
        build_observations(&list, &[], &details)
    }

    #[test]
    fn records_groups_by_assignment() {
        let seg = Segmentation {
            num_records: 3,
            assignments: vec![Some(0), Some(0), Some(1), Some(1)],
        };
        assert_eq!(seg.records(), vec![vec![0, 1], vec![2, 3], vec![]]);
        assert_eq!(seg.assigned_count(), 4);
        assert!(seg.is_total());
    }

    #[test]
    fn check_accepts_valid_segmentation() {
        let seg = Segmentation {
            num_records: 3,
            assignments: vec![Some(0), Some(0), Some(1), Some(1)],
        };
        assert!(seg.check(&obs()).is_empty());
    }

    #[test]
    fn check_rejects_wrong_page() {
        let seg = Segmentation {
            num_records: 3,
            assignments: vec![Some(1), Some(0), Some(1), Some(1)],
        };
        let v = seg.check(&obs());
        assert!(v.iter().any(|m| m.contains("E1")), "{v:?}");
    }

    #[test]
    fn check_rejects_non_contiguous_record() {
        // A on r1, then C unassigned, D on r1 again: r1 = {0, 3}? A is on
        // d1 only so use extracts 0 and 1 for r0 split by an unassigned 1.
        let seg = Segmentation {
            num_records: 3,
            assignments: vec![Some(0), None, Some(0), None],
        };
        let v = seg.check(&obs());
        assert!(v.iter().any(|m| m.contains("not contiguous")), "{v:?}");
    }

    #[test]
    fn check_rejects_length_mismatch() {
        let seg = Segmentation {
            num_records: 3,
            assignments: vec![Some(0)],
        };
        assert!(!seg.check(&obs()).is_empty());
    }

    #[test]
    fn unassigned_constructor() {
        let seg = Segmentation::unassigned(2, 5);
        assert_eq!(seg.assigned_count(), 0);
        assert!(!seg.is_total());
        assert_eq!(seg.records(), vec![Vec::<usize>::new(), Vec::new()]);
    }

    #[test]
    fn render_table_marks_cells() {
        let seg = Segmentation {
            num_records: 3,
            assignments: vec![Some(0), Some(0), Some(1), Some(1)],
        };
        let t = seg.render_table(&obs());
        assert!(t.contains("| r1 | 1 | 1 |"));
        assert!(t.contains("r2"));
        assert!(!t.contains("r3"), "empty records are omitted");
    }
}
