//! Extracts: maximal separator-free token runs — "all visible strings in
//! the table".

use serde::{Deserialize, Serialize};
use tableseg_html::Token;

use crate::separator::is_separator;

/// One extract: a contiguous sequence of non-separator tokens from the list
/// page's table slot. Extracts are *occurrences* — the same string appearing
/// twice in the stream yields two distinct extracts (E₁ and E₅ in the
/// paper's Superpages example are both "John Smith").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Extract {
    /// Index of the extract in stream order (0-based; the paper's `E₁` is
    /// index 0).
    pub index: usize,
    /// The tokens making up the extract.
    pub tokens: Vec<Token>,
    /// Index of the first token of this extract within the token slice the
    /// extracts were derived from.
    pub start: usize,
}

impl Extract {
    /// The token texts, used as the match key against detail pages.
    pub fn token_texts(&self) -> Vec<&str> {
        self.tokens.iter().map(|t| t.text.as_str()).collect()
    }

    /// A human-readable rendering: tokens joined with single spaces.
    pub fn text(&self) -> String {
        self.token_texts().join(" ")
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True if the extract has no tokens (never produced by
    /// [`derive_extracts`]).
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

/// Splits a token stream (the table slot contents) into extracts: maximal
/// runs of non-separator tokens.
pub fn derive_extracts(tokens: &[Token]) -> Vec<Extract> {
    let mut out = Vec::new();
    let mut run: Vec<Token> = Vec::new();
    let mut run_start = 0;
    for (i, tok) in tokens.iter().enumerate() {
        if is_separator(tok) {
            flush(&mut out, &mut run, run_start);
        } else {
            if run.is_empty() {
                run_start = i;
            }
            run.push(tok.clone());
        }
    }
    flush(&mut out, &mut run, run_start);
    out
}

fn flush(out: &mut Vec<Extract>, run: &mut Vec<Token>, start: usize) {
    if !run.is_empty() {
        out.push(Extract {
            index: out.len(),
            tokens: std::mem::take(run),
            start,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tableseg_html::lexer::tokenize;

    fn derive(html: &str) -> Vec<Extract> {
        derive_extracts(&tokenize(html))
    }

    #[test]
    fn tags_split_extracts() {
        let ex = derive("<td>John Smith</td><td>New Holland</td>");
        assert_eq!(ex.len(), 2);
        assert_eq!(ex[0].text(), "John Smith");
        assert_eq!(ex[1].text(), "New Holland");
        assert_eq!(ex[0].index, 0);
        assert_eq!(ex[1].index, 1);
    }

    #[test]
    fn allowed_punctuation_stays_inside() {
        let ex = derive("<td>(740) 335-5555</td>");
        assert_eq!(ex.len(), 1);
        assert_eq!(ex[0].text(), "( 740 ) 335 - 5555");
        assert_eq!(ex[0].len(), 6);
    }

    #[test]
    fn special_punctuation_splits() {
        let ex = derive("John Smith ~ New Holland");
        assert_eq!(ex.len(), 2);
        assert_eq!(ex[0].text(), "John Smith");
        assert_eq!(ex[1].text(), "New Holland");
    }

    #[test]
    fn city_state_zip_is_one_extract() {
        let ex = derive("<td>Findlay, OH 45840</td>");
        assert_eq!(ex.len(), 1);
        assert_eq!(ex[0].text(), "Findlay , OH 45840");
    }

    #[test]
    fn starts_record_token_positions() {
        let toks = tokenize("<td>A</td><td>B C</td>");
        let ex = derive_extracts(&toks);
        assert_eq!(ex[0].start, 1);
        assert_eq!(ex[1].start, 4);
        assert_eq!(toks[ex[1].start].text, "B");
    }

    #[test]
    fn empty_and_all_separator_streams() {
        assert!(derive("").is_empty());
        assert!(derive("<td></td><br>").is_empty());
        assert!(derive("~ | :").is_empty());
    }

    #[test]
    fn br_separates_fields() {
        let ex = derive("FirstName LastName<br>221 Washington St");
        assert_eq!(ex.len(), 2);
        assert_eq!(ex[0].text(), "FirstName LastName");
    }

    #[test]
    fn token_texts_borrows() {
        let ex = derive("<td>a b</td>");
        assert_eq!(ex[0].token_texts(), vec!["a", "b"]);
    }
}
