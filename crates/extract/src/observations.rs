//! The observation table: `D_i` and positions for every kept extract
//! (the paper's Table 1 and Table 3).
//!
//! Matching runs in the interned-symbol domain ([`match_extracts`] /
//! [`match_extracts_indexed`]): each page is reduced and indexed once
//! ([`PageIndex`]), needles are symbol slices, and repeated extracts (the
//! paper's E₁/E₅ "John Smith") are matched once and memoized. The original
//! string-scanning implementation survives as [`match_extracts_naive`],
//! the differential-test oracle.

use serde::{Deserialize, Serialize};
use tableseg_html::{FastMap, Interner, Symbol, Token, TypeSet};

use crate::extracts::{derive_extracts, Extract};
use crate::filter::{decide, Decision, SkipReason};
use crate::matcher::{MatchStream, PageIndex};

/// One observation of an extract on a detail page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PagePos {
    /// Detail-page index (0-based; the paper's `r₁` is page 0).
    pub page: u32,
    /// Starting token number within the detail page's reduced
    /// (separator-free) stream.
    pub pos: u32,
}

/// One row of the observation table: an extract with its detail-page
/// occurrence set `D_i` and observation positions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsItem {
    /// The extract.
    pub extract: Extract,
    /// `T_i`: the union of the extract's token types, precomputed at match
    /// time so that evidence building never revisits the tokens.
    pub types: TypeSet,
    /// `D_i`: sorted, deduplicated indices of the detail pages on which the
    /// extract occurs. Never empty for a kept extract.
    pub pages: Vec<u32>,
    /// Every `(page, position)` at which the extract was observed.
    pub positions: Vec<PagePos>,
}

impl ObsItem {
    /// Builds a row, deriving `T_i` from the extract's tokens.
    pub fn new(extract: Extract, pages: Vec<u32>, positions: Vec<PagePos>) -> ObsItem {
        let types = extract
            .tokens
            .iter()
            .fold(TypeSet::EMPTY, |acc, t| acc.union(t.types));
        ObsItem {
            extract,
            types,
            pages,
            positions,
        }
    }

    /// Returns `true` if the extract was observed on detail page `page`.
    pub fn on_page(&self, page: u32) -> bool {
        self.pages.binary_search(&page).is_ok()
    }
}

/// An extract excluded from the observation table, with the reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkippedExtract {
    /// The extract.
    pub extract: Extract,
    /// Why it was skipped.
    pub reason: SkipReason,
}

/// The observation table for one list page (the paper's Table 1, with the
/// position data of Table 3).
#[derive(Debug, Clone)]
pub struct Observations {
    /// `K`: the number of detail pages, i.e. the number of records.
    pub num_records: usize,
    /// Kept extracts in list-page stream order.
    pub items: Vec<ObsItem>,
    /// Extracts excluded by the filtering rules, in stream order, for later
    /// remainder assignment.
    pub skipped: Vec<SkippedExtract>,
}

impl Observations {
    /// Number of kept extracts.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if no extract survived filtering.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Renders the observation table in the format of the paper's Table 1
    /// (columns = extracts in stream order, row = `D_i`).
    pub fn render_table(&self) -> String {
        let mut header = String::from("|    |");
        let mut row = String::from("| D_i |");
        for (i, item) in self.items.iter().enumerate() {
            header.push_str(&format!(" E{}: {} |", i + 1, item.extract.text()));
            let pages: Vec<String> = item.pages.iter().map(|p| format!("r{}", p + 1)).collect();
            row.push_str(&format!(" {} |", pages.join(",")));
        }
        format!("{header}\n{row}\n")
    }
}

/// Builds the observation table for the table-slot tokens of one list page.
///
/// * `slot_tokens` — the tokens of the slot believed to contain the table
///   (or the whole page under the fallback);
/// * `other_list_pages` — full token streams of the *other* sample list
///   pages, used by the all-list-pages filter;
/// * `detail_pages` — full token streams of the detail pages, in record
///   order (`detail_pages[j]` is the page reached from record `r_{j+1}`).
pub fn build_observations(
    slot_tokens: &[Token],
    other_list_pages: &[&[Token]],
    detail_pages: &[&[Token]],
) -> Observations {
    let extracts = derive_extracts(slot_tokens);
    match_extracts(extracts, other_list_pages, detail_pages)
}

/// The matching half of [`build_observations`]: observes already-derived
/// extracts on the detail pages (and filters against the other list
/// pages). Split out so callers can time extraction and matching as
/// separate stages.
///
/// One-shot symbol front end: interns the extract tokens, reduces and
/// indexes every page against that interner, and runs the indexed match.
/// Batch callers that already interned the site's pages should build the
/// needles and [`PageIndex`]es themselves (once per site) and call
/// [`match_extracts_indexed`].
pub fn match_extracts(
    extracts: Vec<Extract>,
    other_list_pages: &[&[Token]],
    detail_pages: &[&[Token]],
) -> Observations {
    let mut interner = Interner::new();
    let needles: Vec<Vec<Symbol>> = extracts
        .iter()
        .map(|e| interner.intern_tokens(&e.tokens))
        .collect();
    let needle_refs: Vec<&[Symbol]> = needles.iter().map(Vec::as_slice).collect();
    let details: Vec<PageIndex> = detail_pages
        .iter()
        .map(|p| PageIndex::build(p, &interner))
        .collect();
    let others: Vec<PageIndex> = other_list_pages
        .iter()
        .map(|p| PageIndex::build(p, &interner))
        .collect();
    let detail_refs: Vec<&PageIndex> = details.iter().collect();
    let other_refs: Vec<&PageIndex> = others.iter().collect();
    match_extracts_indexed(extracts, &needle_refs, &other_refs, &detail_refs)
}

/// The match outcome of one distinct needle, memoized across duplicate
/// extracts (the same string appearing twice yields two extracts with
/// identical observations — the paper's E₁ and E₅).
#[derive(Clone)]
struct NeedleMatch {
    pages: Vec<u32>,
    positions: Vec<PagePos>,
    decision: Decision,
}

/// The indexed matcher core: observes extracts on the pre-indexed detail
/// pages and filters against the pre-indexed other list pages.
///
/// `needles[i]` must be the symbol stream of `extracts[i]`'s tokens, under
/// the same interner the [`PageIndex`]es were built against. Every page is
/// scanned only at index-construction time; per extract, matching probes
/// the first-symbol bucket of each page. Results — `D_i` ascending,
/// positions in `(page, pos)` order — are byte-identical to
/// [`match_extracts_naive`].
pub fn match_extracts_indexed(
    extracts: Vec<Extract>,
    needles: &[&[Symbol]],
    other_list_pages: &[&PageIndex],
    detail_pages: &[&PageIndex],
) -> Observations {
    assert_eq!(extracts.len(), needles.len(), "one needle per extract");
    let num_details = detail_pages.len();
    let mut memo: FastMap<&[Symbol], NeedleMatch> = FastMap::default();

    let mut items = Vec::new();
    let mut skipped = Vec::new();
    for (extract, &needle) in extracts.into_iter().zip(needles) {
        let m = memo.entry(needle).or_insert_with(|| {
            let mut pages = Vec::new();
            let mut positions = Vec::new();
            for (j, index) in detail_pages.iter().enumerate() {
                let before = positions.len();
                index.for_each_match(needle, |pos| {
                    positions.push(PagePos {
                        page: j as u32,
                        pos,
                    });
                    true
                });
                if positions.len() > before {
                    pages.push(j as u32);
                }
            }
            let decision = decide(pages.len(), num_details, || {
                !other_list_pages.is_empty()
                    && other_list_pages.iter().all(|idx| idx.contains(needle))
            });
            NeedleMatch {
                pages,
                positions,
                decision,
            }
        });
        match m.decision {
            Decision::Keep => {
                items.push(ObsItem::new(extract, m.pages.clone(), m.positions.clone()))
            }
            Decision::Skip(reason) => skipped.push(SkippedExtract { extract, reason }),
        }
    }

    Observations {
        num_records: num_details,
        items,
        skipped,
    }
}

/// The original per-extract string scan over [`MatchStream`]s, kept as the
/// **test oracle** for the indexed path (see `tests/extract_props.rs`):
/// trivially correct, no interning, no index, no memoization.
pub fn match_extracts_naive(
    extracts: Vec<Extract>,
    other_list_pages: &[&[Token]],
    detail_pages: &[&[Token]],
) -> Observations {
    let detail_streams: Vec<MatchStream> =
        detail_pages.iter().map(|p| MatchStream::new(p)).collect();
    let other_streams: Vec<MatchStream> = other_list_pages
        .iter()
        .map(|p| MatchStream::new(p))
        .collect();

    let mut items = Vec::new();
    let mut skipped = Vec::new();

    for extract in extracts {
        let texts = extract.token_texts();
        let mut pages = Vec::new();
        let mut positions = Vec::new();
        for (j, stream) in detail_streams.iter().enumerate() {
            let hits = stream.find_all(&texts);
            if !hits.is_empty() {
                pages.push(j as u32);
                for pos in hits {
                    positions.push(PagePos {
                        page: j as u32,
                        pos: pos as u32,
                    });
                }
            }
        }
        let decision = decide(pages.len(), detail_streams.len(), || {
            !other_streams.is_empty() && other_streams.iter().all(|s| s.contains(&texts))
        });
        match decision {
            Decision::Keep => items.push(ObsItem::new(extract, pages, positions)),
            Decision::Skip(reason) => skipped.push(SkippedExtract { extract, reason }),
        }
    }

    Observations {
        num_records: detail_pages.len(),
        items,
        skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tableseg_html::lexer::tokenize;

    /// A miniature of the paper's Superpages example (Table 1): two records
    /// sharing a name and a phone number, plus a third record.
    fn superpages_fixture() -> (Vec<Token>, Vec<Vec<Token>>) {
        let list = tokenize(
            "<tr><td>John Smith</td><td>221 Washington</td><td>New Holland</td><td>(740) 335-5555</td></tr>\
             <tr><td>John Smith</td><td>221R Washington</td><td>Washington</td><td>(740) 335-5555</td></tr>\
             <tr><td>George W. Smith</td><td>Findlay, OH</td><td>(419) 423-1212</td></tr>",
        );
        let details = vec![
            tokenize(
                "<h1>John Smith</h1><p>221 Washington</p><p>New Holland</p><p>(740) 335-5555</p>",
            ),
            tokenize(
                "<h1>John Smith</h1><p>221R Washington</p><p>Washington</p><p>(740) 335-5555</p>",
            ),
            tokenize("<h1>George W. Smith</h1><p>Findlay, OH</p><p>(419) 423-1212</p>"),
        ];
        (list, details)
    }

    #[test]
    fn paper_table_1_shape() {
        let (list, details) = superpages_fixture();
        let detail_refs: Vec<&[Token]> = details.iter().map(Vec::as_slice).collect();
        let obs = build_observations(&list, &[], &detail_refs);
        assert_eq!(obs.num_records, 3);
        // 11 extracts kept, as in Table 1 of the paper.
        assert_eq!(obs.len(), 11);
        // E1 = "John Smith" observed on r1 and r2.
        assert_eq!(obs.items[0].extract.text(), "John Smith");
        assert_eq!(obs.items[0].pages, vec![0, 1]);
        // E2 = "221 Washington" observed only on r1.
        assert_eq!(obs.items[1].pages, vec![0]);
        // E4 = phone number observed on r1 and r2.
        assert_eq!(obs.items[3].pages, vec![0, 1]);
        // E5 = second "John Smith" occurrence, same D_i as E1.
        assert_eq!(obs.items[4].extract.text(), "John Smith");
        assert_eq!(obs.items[4].pages, vec![0, 1]);
        // E9..E11 observed only on r3.
        for item in &obs.items[8..] {
            assert_eq!(item.pages, vec![2]);
        }
    }

    #[test]
    fn shared_extracts_have_multiple_positions() {
        let (list, details) = superpages_fixture();
        let detail_refs: Vec<&[Token]> = details.iter().map(Vec::as_slice).collect();
        let obs = build_observations(&list, &[], &detail_refs);
        // "John Smith" occurs once on r1 and once on r2: 2 observations.
        assert_eq!(obs.items[0].positions.len(), 2);
        let pages: Vec<u32> = obs.items[0].positions.iter().map(|p| p.page).collect();
        assert_eq!(pages, vec![0, 1]);
        // E1 and E5 (same string) share the same observations.
        assert_eq!(obs.items[0].positions, obs.items[4].positions);
    }

    #[test]
    fn indexed_agrees_with_naive_on_superpages() {
        let (list, details) = superpages_fixture();
        let detail_refs: Vec<&[Token]> = details.iter().map(Vec::as_slice).collect();
        let fast = match_extracts(derive_extracts(&list), &[], &detail_refs);
        let naive = match_extracts_naive(derive_extracts(&list), &[], &detail_refs);
        assert_eq!(fast.items, naive.items);
        assert_eq!(fast.skipped, naive.skipped);
        assert_eq!(fast.num_records, naive.num_records);
    }

    #[test]
    fn extraneous_strings_are_skipped() {
        let list = tokenize("<td>John Smith</td><td>More Info</td>");
        let d1 = tokenize("<h1>John Smith</h1>");
        let d2 = tokenize("<h1>Jane Doe</h1>");
        let details: Vec<&[Token]> = vec![&d1, &d2];
        let obs = build_observations(&list, &[], &details);
        assert_eq!(obs.len(), 1);
        assert_eq!(obs.skipped.len(), 1);
        assert_eq!(obs.skipped[0].extract.text(), "More Info");
        assert_eq!(obs.skipped[0].reason, SkipReason::OnNoDetailPage);
    }

    #[test]
    fn value_on_every_detail_page_is_skipped() {
        let list = tokenize("<td>Springfield</td><td>John</td>");
        let d1 = tokenize("<p>John</p><p>Springfield</p>");
        let d2 = tokenize("<p>Jane</p><p>Springfield</p>");
        let details: Vec<&[Token]> = vec![&d1, &d2];
        let obs = build_observations(&list, &[], &details);
        assert_eq!(obs.len(), 1);
        assert_eq!(obs.items[0].extract.text(), "John");
        assert_eq!(obs.skipped[0].reason, SkipReason::OnAllDetailPages);
    }

    #[test]
    fn extract_on_every_list_page_is_skipped() {
        let list = tokenize("<td>Search Again</td><td>John</td>");
        let other1 = tokenize("<p>Search Again</p><p>Alice</p>");
        let other2 = tokenize("<p>x</p><p>Search Again</p>");
        let others: Vec<&[Token]> = vec![&other1, &other2];
        let d1 = tokenize("<p>John</p><p>Search Again</p>");
        let d2 = tokenize("<p>Jane</p>");
        let details: Vec<&[Token]> = vec![&d1, &d2];
        let obs = build_observations(&list, &others, &details);
        assert_eq!(obs.len(), 1);
        assert_eq!(obs.items[0].extract.text(), "John");
        assert_eq!(obs.skipped[0].reason, SkipReason::OnAllListPages);
    }

    #[test]
    fn types_are_precomputed_union() {
        use tableseg_html::TokenType;
        let list = tokenize("<td>John 42</td>");
        let d1 = tokenize("<p>John 42</p>");
        let d2 = tokenize("<p>other</p>");
        let details: Vec<&[Token]> = vec![&d1, &d2];
        let obs = build_observations(&list, &[], &details);
        assert_eq!(obs.len(), 1);
        let types = obs.items[0].types;
        assert!(types.contains(TokenType::Capitalized));
        assert!(types.contains(TokenType::Numeric));
        assert!(!types.contains(TokenType::Html));
    }

    #[test]
    fn on_page_lookup() {
        let item = ObsItem::new(
            crate::extracts::derive_extracts(&tokenize("x")).remove(0),
            vec![0, 2, 5],
            vec![],
        );
        assert!(item.on_page(0));
        assert!(!item.on_page(1));
        assert!(item.on_page(5));
    }

    #[test]
    fn render_table_mentions_extracts_and_pages() {
        let (list, details) = superpages_fixture();
        let detail_refs: Vec<&[Token]> = details.iter().map(Vec::as_slice).collect();
        let obs = build_observations(&list, &[], &detail_refs);
        let table = obs.render_table();
        assert!(table.contains("John Smith"));
        assert!(table.contains("r1,r2"));
        assert!(table.contains("r3"));
    }

    #[test]
    fn empty_slot_yields_empty_observations() {
        let obs = build_observations(&[], &[], &[]);
        assert!(obs.is_empty());
        assert_eq!(obs.num_records, 0);
    }
}
