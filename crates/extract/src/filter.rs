//! The extract-filtering rules (Section 3.2).
//!
//! "If an extract appears in all the list pages or in all the detail pages,
//! it is ignored: such extracts will not contribute useful information to
//! the record segmentation task."
//!
//! Extracts that appear on *no* detail page are likewise unusable ("Only
//! the strings that appeared on both list and detail pages were used") but
//! are kept aside so that the pipeline can later attach them to the record
//! of the last assigned extract (Section 6.2).

use crate::extracts::Extract;
use crate::matcher::MatchStream;

/// Why an extract was excluded from the observation table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipReason {
    /// The extract appears on every list page (template residue such as
    /// shared headings that survived template finding).
    OnAllListPages,
    /// The extract appears on every detail page (e.g. a field label or a
    /// value shared by every record) and so cannot discriminate records.
    OnAllDetailPages,
    /// The extract appears on no detail page ("More Info" link text,
    /// advertisements, attribute values not repeated on detail pages).
    OnNoDetailPage,
}

/// The decision for one extract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Keep: the extract carries record-discriminating information.
    Keep,
    /// Skip for the given reason.
    Skip(SkipReason),
}

/// Decides whether an extract is kept, given the detail pages on which it
/// was observed and the other list pages of the site.
///
/// `detail_hits` is the number of detail pages containing the extract and
/// `num_details` the total number of detail pages. `other_lists` are the
/// match streams of the list pages *other than* the one being segmented
/// (the extract trivially appears on its own page).
pub fn decide(
    extract: &Extract,
    detail_hits: usize,
    num_details: usize,
    other_lists: &[MatchStream],
) -> Decision {
    if detail_hits == 0 {
        return Decision::Skip(SkipReason::OnNoDetailPage);
    }
    if num_details > 1 && detail_hits == num_details {
        return Decision::Skip(SkipReason::OnAllDetailPages);
    }
    if !other_lists.is_empty() {
        let texts = extract.token_texts();
        if other_lists.iter().all(|s| s.contains(&texts)) {
            return Decision::Skip(SkipReason::OnAllListPages);
        }
    }
    Decision::Keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extracts::derive_extracts;
    use tableseg_html::lexer::tokenize;

    fn extract(text: &str) -> Extract {
        derive_extracts(&tokenize(text)).remove(0)
    }

    fn stream(html: &str) -> MatchStream {
        MatchStream::new(&tokenize(html))
    }

    #[test]
    fn keeps_discriminating_extract() {
        let e = extract("John Smith");
        assert_eq!(decide(&e, 1, 3, &[stream("other page")]), Decision::Keep);
    }

    #[test]
    fn skips_on_no_detail_page() {
        let e = extract("More Info");
        assert_eq!(
            decide(&e, 0, 3, &[]),
            Decision::Skip(SkipReason::OnNoDetailPage)
        );
    }

    #[test]
    fn skips_on_all_detail_pages() {
        let e = extract("Springfield");
        assert_eq!(
            decide(&e, 3, 3, &[]),
            Decision::Skip(SkipReason::OnAllDetailPages)
        );
    }

    #[test]
    fn skips_on_all_list_pages() {
        let e = extract("Search Again");
        let others = vec![stream("Search Again here"), stream("x Search Again")];
        assert_eq!(
            decide(&e, 1, 3, &others),
            Decision::Skip(SkipReason::OnAllListPages)
        );
    }

    #[test]
    fn kept_when_absent_from_some_list_page() {
        let e = extract("John Smith");
        let others = vec![stream("John Smith"), stream("nothing relevant")];
        assert_eq!(decide(&e, 1, 3, &others), Decision::Keep);
    }

    #[test]
    fn single_detail_page_not_treated_as_all() {
        // With K = 1 every record extract appears on "all" detail pages;
        // the all-details rule only makes sense for K > 1.
        let e = extract("John Smith");
        assert_eq!(decide(&e, 1, 1, &[]), Decision::Keep);
    }
}
