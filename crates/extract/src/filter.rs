//! The extract-filtering rules (Section 3.2).
//!
//! "If an extract appears in all the list pages or in all the detail pages,
//! it is ignored: such extracts will not contribute useful information to
//! the record segmentation task."
//!
//! Extracts that appear on *no* detail page are likewise unusable ("Only
//! the strings that appeared on both list and detail pages were used") but
//! are kept aside so that the pipeline can later attach them to the record
//! of the last assigned extract (Section 6.2).

/// Why an extract was excluded from the observation table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipReason {
    /// The extract appears on every list page (template residue such as
    /// shared headings that survived template finding).
    OnAllListPages,
    /// The extract appears on every detail page (e.g. a field label or a
    /// value shared by every record) and so cannot discriminate records.
    OnAllDetailPages,
    /// The extract appears on no detail page ("More Info" link text,
    /// advertisements, attribute values not repeated on detail pages).
    OnNoDetailPage,
}

/// The decision for one extract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Keep: the extract carries record-discriminating information.
    Keep,
    /// Skip for the given reason.
    Skip(SkipReason),
}

/// Decides whether an extract is kept, given the detail pages on which it
/// was observed and its presence on the site's other list pages.
///
/// `detail_hits` is the number of detail pages containing the extract and
/// `num_details` the total number of detail pages. `on_every_other_list`
/// reports whether the extract occurs on **every** list page other than
/// the one being segmented (it trivially appears on its own page); it must
/// return `false` when there are no other list pages. The closure is only
/// evaluated when the detail-page rules keep the extract, so callers can
/// make the (comparatively expensive) list-page probe lazy.
pub fn decide(
    detail_hits: usize,
    num_details: usize,
    on_every_other_list: impl FnOnce() -> bool,
) -> Decision {
    if detail_hits == 0 {
        return Decision::Skip(SkipReason::OnNoDetailPage);
    }
    if num_details > 1 && detail_hits == num_details {
        return Decision::Skip(SkipReason::OnAllDetailPages);
    }
    if on_every_other_list() {
        return Decision::Skip(SkipReason::OnAllListPages);
    }
    Decision::Keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::MatchStream;
    use tableseg_html::lexer::tokenize;

    fn stream(html: &str) -> MatchStream {
        MatchStream::new(&tokenize(html))
    }

    /// The closure production callers build over the other list pages.
    fn on_all(needle: &[&str], others: &[MatchStream]) -> bool {
        !others.is_empty() && others.iter().all(|s| s.contains(needle))
    }

    #[test]
    fn keeps_discriminating_extract() {
        let others = vec![stream("other page")];
        assert_eq!(
            decide(1, 3, || on_all(&["John", "Smith"], &others)),
            Decision::Keep
        );
    }

    #[test]
    fn skips_on_no_detail_page() {
        assert_eq!(
            decide(0, 3, || unreachable!("lazy: not evaluated")),
            Decision::Skip(SkipReason::OnNoDetailPage)
        );
    }

    #[test]
    fn skips_on_all_detail_pages() {
        assert_eq!(
            decide(3, 3, || unreachable!("lazy: not evaluated")),
            Decision::Skip(SkipReason::OnAllDetailPages)
        );
    }

    #[test]
    fn skips_on_all_list_pages() {
        let others = vec![stream("Search Again here"), stream("x Search Again")];
        assert_eq!(
            decide(1, 3, || on_all(&["Search", "Again"], &others)),
            Decision::Skip(SkipReason::OnAllListPages)
        );
    }

    #[test]
    fn kept_when_absent_from_some_list_page() {
        let others = vec![stream("John Smith"), stream("nothing relevant")];
        assert_eq!(
            decide(1, 3, || on_all(&["John", "Smith"], &others)),
            Decision::Keep
        );
    }

    #[test]
    fn no_other_list_pages_never_skips_as_all_lists() {
        assert_eq!(decide(1, 3, || on_all(&["John"], &[])), Decision::Keep);
    }

    #[test]
    fn single_detail_page_not_treated_as_all() {
        // With K = 1 every record extract appears on "all" detail pages;
        // the all-details rule only makes sense for K > 1.
        assert_eq!(decide(1, 1, || false), Decision::Keep);
    }
}
