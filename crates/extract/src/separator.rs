//! The separator definition (Section 3.2).
//!
//! "Separators are HTML tags and special punctuation characters (any
//! character that is not in the set `.,()-`)."

use tableseg_html::Token;
use tableseg_html::{Interner, Symbol, TokenType, TypeSet, UNKNOWN_SYMBOL};

/// Punctuation characters that are **not** separators — they may appear
/// inside an extract (street numbers `221-B`, phone numbers `(740)
/// 335-5555`, city-state `Findlay, OH`).
pub const NON_SEPARATOR_PUNCT: [char; 5] = ['.', ',', '(', ')', '-'];

/// Returns `true` if a punctuation character is a separator.
#[inline]
pub fn is_separator_char(ch: char) -> bool {
    !NON_SEPARATOR_PUNCT.contains(&ch)
}

/// The separator decision on a token's raw parts: the [`Token`]-level
/// test, the per-symbol [`SeparatorMask`], and the zero-copy scan path
/// (which has a resolved `&str` and a `TypeSet` but no owned [`Token`])
/// all share this.
#[inline]
pub fn is_separator_parts(text: &str, types: TypeSet) -> bool {
    if types.contains(TokenType::Html) {
        return true;
    }
    if types.contains(TokenType::Punctuation) {
        // Punctuation tokens produced by the lexer are single characters;
        // a pathological empty text (never lexer-produced) separates.
        return match text.chars().next() {
            Some(ch) => is_separator_char(ch),
            None => true,
        };
    }
    false
}

/// Returns `true` if a token is a separator: an HTML tag, or a punctuation
/// token whose character is outside `.,()-`.
pub fn is_separator(token: &Token) -> bool {
    is_separator_parts(&token.text, token.types)
}

/// The separator decision precomputed for every symbol of an interner.
///
/// Token text determines the separator verdict, so on interned streams the
/// per-token classification collapses to one bit lookup per symbol —
/// computed once per site, not once per token occurrence.
#[derive(Debug, Clone)]
pub struct SeparatorMask {
    flags: Vec<bool>,
}

impl SeparatorMask {
    /// Classifies every symbol of `interner`.
    pub fn build(interner: &Interner) -> SeparatorMask {
        let flags = (0..interner.len() as Symbol)
            .map(|sym| is_separator_parts(interner.text(sym), interner.types(sym)))
            .collect();
        SeparatorMask { flags }
    }

    /// Returns `true` if `sym` is a separator. [`UNKNOWN_SYMBOL`] (and any
    /// symbol interned after the mask was built) is treated as
    /// non-separator; pipeline streams are fully interned before masks are
    /// built, so neither occurs there.
    #[inline]
    pub fn is_separator(&self, sym: Symbol) -> bool {
        sym != UNKNOWN_SYMBOL && self.flags.get(sym as usize).copied().unwrap_or(false)
    }

    /// Number of classified symbols.
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    /// Returns `true` if no symbol was classified.
    pub fn is_empty(&self) -> bool {
        self.flags.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tableseg_html::lexer::tokenize;

    #[test]
    fn tags_are_separators() {
        let toks = tokenize("<br><td align=x></table>");
        assert!(toks.iter().all(is_separator));
    }

    #[test]
    fn allowed_punctuation_is_not_a_separator() {
        for p in [".", ",", "(", ")", "-"] {
            let toks = tokenize(p);
            assert!(!is_separator(&toks[0]), "{p}");
        }
    }

    #[test]
    fn special_punctuation_is_a_separator() {
        for p in ["~", "|", ":", ";", "$", "&", "*", "#", "/", "!"] {
            let toks = tokenize(p);
            assert!(is_separator(&toks[0]), "{p}");
        }
    }

    #[test]
    fn words_are_not_separators() {
        for w in ["John", "5555", "221R", "oh"] {
            let toks = tokenize(w);
            assert!(!is_separator(&toks[0]), "{w}");
        }
    }

    #[test]
    fn mask_agrees_with_token_classification() {
        let toks = tokenize("<td>John (740) 335-5555</td> ~ | more");
        let mut interner = Interner::new();
        let syms = interner.intern_tokens(&toks);
        let mask = SeparatorMask::build(&interner);
        assert_eq!(mask.len(), interner.len());
        for (tok, &sym) in toks.iter().zip(&syms) {
            assert_eq!(mask.is_separator(sym), is_separator(tok), "{:?}", tok.text);
        }
    }

    #[test]
    fn mask_treats_unknown_as_non_separator() {
        let mask = SeparatorMask::build(&Interner::new());
        assert!(mask.is_empty());
        assert!(!mask.is_separator(UNKNOWN_SYMBOL));
        assert!(!mask.is_separator(7));
    }
}
