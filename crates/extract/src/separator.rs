//! The separator definition (Section 3.2).
//!
//! "Separators are HTML tags and special punctuation characters (any
//! character that is not in the set `.,()-`)."

use tableseg_html::Token;

/// Punctuation characters that are **not** separators — they may appear
/// inside an extract (street numbers `221-B`, phone numbers `(740)
/// 335-5555`, city-state `Findlay, OH`).
pub const NON_SEPARATOR_PUNCT: [char; 5] = ['.', ',', '(', ')', '-'];

/// Returns `true` if a punctuation character is a separator.
#[inline]
pub fn is_separator_char(ch: char) -> bool {
    !NON_SEPARATOR_PUNCT.contains(&ch)
}

/// Returns `true` if a token is a separator: an HTML tag, or a punctuation
/// token whose character is outside `.,()-`.
pub fn is_separator(token: &Token) -> bool {
    if token.is_html() {
        return true;
    }
    if token.is_punctuation() {
        // Punctuation tokens produced by the lexer are single characters.
        let ch = token.text.chars().next().expect("non-empty token");
        return is_separator_char(ch);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use tableseg_html::lexer::tokenize;

    #[test]
    fn tags_are_separators() {
        let toks = tokenize("<br><td align=x></table>");
        assert!(toks.iter().all(is_separator));
    }

    #[test]
    fn allowed_punctuation_is_not_a_separator() {
        for p in [".", ",", "(", ")", "-"] {
            let toks = tokenize(p);
            assert!(!is_separator(&toks[0]), "{p}");
        }
    }

    #[test]
    fn special_punctuation_is_a_separator() {
        for p in ["~", "|", ":", ";", "$", "&", "*", "#", "/", "!"] {
            let toks = tokenize(p);
            assert!(is_separator(&toks[0]), "{p}");
        }
    }

    #[test]
    fn words_are_not_separators() {
        for w in ["John", "5555", "221R", "oh"] {
            let toks = tokenize(w);
            assert!(!is_separator(&toks[0]), "{w}");
        }
    }
}
