//! Data extraction: from a table slot to the observation table
//! (Section 3.2 of the paper).
//!
//! "We extract data from the table ... simply by extracting, from the slot
//! we believe to contain the table, the contiguous sequences of tokens that
//! do not contain separators. Separators are HTML tags and special
//! punctuation characters (any character that is not in the set `.,()-`).
//! Practically speaking, we end up with all visible strings in the table.
//! We call these sequences extracts."
//!
//! For each extract `E_i`, the detail pages on which it was observed are
//! recorded as `D_i` ([`observations`]) together with the positions of each
//! observation ([`positions`]) — the inputs to both the CSP and the
//! probabilistic segmenters. Extracts that appear on *all* list pages or on
//! *all* detail pages carry no information and are filtered out
//! ([`filter`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extracts;
pub mod filter;
pub mod matcher;
pub mod observations;
pub mod positions;
pub mod segmentation;
pub mod separator;

pub use extracts::{derive_extracts, Extract};
pub use matcher::{MatchStream, PageIndex};
pub use observations::{
    build_observations, match_extracts, match_extracts_indexed, match_extracts_naive, ObsItem,
    Observations, PagePos,
};
pub use segmentation::Segmentation;
pub use separator::{is_separator, SeparatorMask};
