//! Regression: a detail page whose vocabulary is entirely absent from the
//! site interner (every token projects to `UNKNOWN_SYMBOL`) must yield
//! empty occurrence sets — no match, no index-probe panic. This is the
//! shape a chaos-blanked or 404-replaced detail page takes after
//! projection through the read-only site interner.

use tableseg_extract::filter::SkipReason;
use tableseg_extract::{derive_extracts, match_extracts_indexed, PageIndex};
use tableseg_html::lexer::tokenize;
use tableseg_html::{Interner, Symbol, UNKNOWN_SYMBOL};

#[test]
fn all_unknown_detail_page_yields_empty_occurrence_sets() {
    // Intern only the list page; the detail page shares no token with it
    // (not even tags), so its whole stream projects to UNKNOWN_SYMBOL.
    let list = tokenize("<td>Ada Lovelace</td><td>Alan Turing</td>");
    let mut interner = Interner::new();
    let list_syms = interner.intern_tokens(&list);
    let detail = tokenize("<div>completely disjoint vocabulary 404</div>");
    let index = PageIndex::build(&detail, &interner);

    // The projected stream is all-UNKNOWN, and the index keeps UNKNOWN out
    // of its occurrence lists entirely.
    assert!(index.symbols().iter().all(|&s| s == UNKNOWN_SYMBOL));
    assert!(!index.contains(&[UNKNOWN_SYMBOL]));

    // Probing with every real extract of the list page: no hit, no panic.
    let extracts = derive_extracts(&list);
    assert!(!extracts.is_empty());
    let needles: Vec<&[Symbol]> = extracts
        .iter()
        .map(|e| &list_syms[e.start..e.start + e.tokens.len()])
        .collect();
    for needle in &needles {
        assert!(index.find_all(needle).is_empty());
        assert!(!index.contains(needle));
    }

    // Through the production matcher: every extract's D_i is empty, so
    // every extract is skipped (observed on no detail page) and the
    // observation table is empty — degraded, not crashed.
    let obs = match_extracts_indexed(extracts, &needles, &[], &[&index]);
    assert!(obs.items.is_empty());
    assert!(!obs.skipped.is_empty());
    assert!(obs
        .skipped
        .iter()
        .all(|s| s.reason == SkipReason::OnNoDetailPage));
}

#[test]
fn empty_detail_page_index_is_probe_safe() {
    // The fully blank variant: zero tokens at all.
    let list = tokenize("<td>Ada Lovelace</td>");
    let mut interner = Interner::new();
    let list_syms = interner.intern_tokens(&list);
    let index = PageIndex::build(&[], &interner);
    assert!(index.is_empty());

    let extracts = derive_extracts(&list);
    let needles: Vec<&[Symbol]> = extracts
        .iter()
        .map(|e| &list_syms[e.start..e.start + e.tokens.len()])
        .collect();
    let obs = match_extracts_indexed(extracts, &needles, &[], &[&index]);
    assert!(obs.items.is_empty());
}
