//! Property tests for extraction: extracts partition the non-separator
//! tokens, maximality holds, matching is sound and complete for planted
//! needles, and the indexed symbol matcher is a drop-in replacement for
//! the naive string matcher (differential oracle).

use proptest::prelude::*;

use tableseg_extract::extracts::derive_extracts;
use tableseg_extract::matcher::{MatchStream, PageIndex};
use tableseg_extract::observations::{match_extracts, match_extracts_naive};
use tableseg_extract::separator::is_separator;
use tableseg_html::lexer::tokenize;
use tableseg_html::Interner;

/// Small HTML fragments mixing words, allowed punctuation, separators and
/// tags.
fn arb_html() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            "[A-Za-z0-9]{1,8}".prop_map(|w| format!("{w} ")),
            Just("( ".to_owned()),
            Just(") ".to_owned()),
            Just(", ".to_owned()),
            Just("- ".to_owned()),
            Just(". ".to_owned()),
            Just("~ ".to_owned()),
            Just("| ".to_owned()),
            Just("<td>".to_owned()),
            Just("</td>".to_owned()),
            Just("<br>".to_owned()),
        ],
        0..40,
    )
    .prop_map(|parts| parts.concat())
}

proptest! {
    /// Extracts cover exactly the non-separator tokens, in order, and are
    /// maximal runs.
    #[test]
    fn extracts_partition_non_separator_tokens(html in arb_html()) {
        let tokens = tokenize(&html);
        let extracts = derive_extracts(&tokens);

        // Flattened extract tokens = the non-separator subsequence.
        let flattened: Vec<&str> = extracts
            .iter()
            .flat_map(|e| e.tokens.iter().map(|t| t.text.as_str()))
            .collect();
        let expected: Vec<&str> = tokens
            .iter()
            .filter(|t| !is_separator(t))
            .map(|t| t.text.as_str())
            .collect();
        prop_assert_eq!(flattened, expected);

        for e in &extracts {
            prop_assert!(!e.is_empty());
            // Separator-free.
            prop_assert!(e.tokens.iter().all(|t| !is_separator(t)));
            // Maximal: the token before `start` (if any) is a separator.
            if e.start > 0 {
                prop_assert!(is_separator(&tokens[e.start - 1]));
            }
            let end = e.start + e.len();
            if end < tokens.len() {
                prop_assert!(is_separator(&tokens[end]));
            }
            // start indexes the first token.
            prop_assert_eq!(&tokens[e.start].text, &e.tokens[0].text);
        }

        // Indices are consecutive from zero.
        for (i, e) in extracts.iter().enumerate() {
            prop_assert_eq!(e.index, i);
        }
    }

    /// A needle cut from the page's own reduced stream is always found at
    /// the position it came from.
    #[test]
    fn planted_needles_are_found(
        html in arb_html(),
        start_frac in 0.0f64..1.0,
        len in 1usize..5,
    ) {
        let stream = MatchStream::new(&tokenize(&html));
        prop_assume!(stream.len() >= len);
        let start = ((stream.len() - len) as f64 * start_frac) as usize;
        let needle: Vec<&str> = stream.texts()[start..start + len]
            .iter()
            .map(String::as_str)
            .collect();
        let hits = stream.find_all(&needle);
        prop_assert!(hits.contains(&start), "{needle:?} not at {start}: {hits:?}");
        // Soundness: every reported hit matches.
        for h in hits {
            for (k, n) in needle.iter().enumerate() {
                prop_assert_eq!(&stream.texts()[h + k], n);
            }
        }
    }

    /// `contains` agrees with `find_all`.
    #[test]
    fn contains_consistent(html in arb_html(), word in "[A-Za-z0-9]{1,8}") {
        let stream = MatchStream::new(&tokenize(&html));
        let needle = [word.as_str()];
        prop_assert_eq!(stream.contains(&needle), !stream.find_all(&needle).is_empty());
    }

    /// The indexed symbol matcher reports exactly the positions the naive
    /// string matcher reports, for arbitrary needle/page pairs — including
    /// pages containing tokens the interner has never seen.
    #[test]
    fn page_index_equals_match_stream(
        needle_html in arb_html(),
        page_html in arb_html(),
    ) {
        let needle_tokens = tokenize(&needle_html);
        let page_tokens = tokenize(&page_html);

        let mut interner = Interner::new();
        let needle_syms = interner.intern_tokens(&needle_tokens);
        let reduced: Vec<_> = needle_tokens
            .iter()
            .zip(&needle_syms)
            .filter(|(t, _)| !is_separator(t))
            .collect();
        let needle_texts: Vec<&str> =
            reduced.iter().map(|(t, _)| t.text.as_str()).collect();
        let needle: Vec<u32> = reduced.iter().map(|(_, &s)| s).collect();

        let stream = MatchStream::new(&page_tokens);
        let index = PageIndex::build(&page_tokens, &interner);
        prop_assert_eq!(index.len(), stream.len());

        let naive: Vec<u32> =
            stream.find_all(&needle_texts).into_iter().map(|p| p as u32).collect();
        prop_assert_eq!(index.find_all(&needle), naive);
        prop_assert_eq!(index.contains(&needle), stream.contains(&needle_texts));
    }

    /// Empty needles and needles longer than the page match nowhere in
    /// either implementation.
    #[test]
    fn degenerate_needles_match_nowhere(page_html in arb_html()) {
        let page_tokens = tokenize(&page_html);
        let stream = MatchStream::new(&page_tokens);

        let mut interner = Interner::new();
        // A needle strictly longer than the page's reduced stream, built
        // from the page's own tokens plus one extra word.
        let mut long_texts: Vec<String> = stream.texts().to_vec();
        long_texts.push("overflow".to_owned());
        let long_syms: Vec<u32> =
            long_texts.iter().map(|t| interner.intern(t)).collect();
        let index = PageIndex::build(&page_tokens, &interner);

        let long_refs: Vec<&str> = long_texts.iter().map(String::as_str).collect();
        prop_assert!(stream.find_all(&long_refs).is_empty());
        prop_assert!(index.find_all(&long_syms).is_empty());
        prop_assert!(stream.find_all(&[]).is_empty());
        prop_assert!(index.find_all(&[]).is_empty());
        prop_assert!(!index.contains(&[]));
    }

    /// End-to-end differential: the production `match_extracts` (interned,
    /// indexed, memoized) builds the same observation table as the naive
    /// oracle for random list/detail/other-list page sets.
    #[test]
    fn indexed_observations_equal_naive(
        list_html in arb_html(),
        detail_htmls in proptest::collection::vec(arb_html(), 0..4),
        other_htmls in proptest::collection::vec(arb_html(), 0..3),
    ) {
        let list = tokenize(&list_html);
        let details: Vec<Vec<_>> = detail_htmls.iter().map(|h| tokenize(h)).collect();
        let others: Vec<Vec<_>> = other_htmls.iter().map(|h| tokenize(h)).collect();
        let detail_refs: Vec<&[_]> = details.iter().map(Vec::as_slice).collect();
        let other_refs: Vec<&[_]> = others.iter().map(Vec::as_slice).collect();

        let fast = match_extracts(derive_extracts(&list), &other_refs, &detail_refs);
        let naive = match_extracts_naive(derive_extracts(&list), &other_refs, &detail_refs);

        prop_assert_eq!(fast.num_records, naive.num_records);
        prop_assert_eq!(fast.items, naive.items);
        let fast_skipped: Vec<_> =
            fast.skipped.iter().map(|s| (s.extract.index, s.reason)).collect();
        let naive_skipped: Vec<_> =
            naive.skipped.iter().map(|s| (s.extract.index, s.reason)).collect();
        prop_assert_eq!(fast_skipped, naive_skipped);
    }
}
