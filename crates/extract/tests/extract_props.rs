//! Property tests for extraction: extracts partition the non-separator
//! tokens, maximality holds, and matching is sound and complete for
//! planted needles.

use proptest::prelude::*;

use tableseg_extract::extracts::derive_extracts;
use tableseg_extract::matcher::MatchStream;
use tableseg_extract::separator::is_separator;
use tableseg_html::lexer::tokenize;

/// Small HTML fragments mixing words, allowed punctuation, separators and
/// tags.
fn arb_html() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            "[A-Za-z0-9]{1,8}".prop_map(|w| format!("{w} ")),
            Just("( ".to_owned()),
            Just(") ".to_owned()),
            Just(", ".to_owned()),
            Just("- ".to_owned()),
            Just(". ".to_owned()),
            Just("~ ".to_owned()),
            Just("| ".to_owned()),
            Just("<td>".to_owned()),
            Just("</td>".to_owned()),
            Just("<br>".to_owned()),
        ],
        0..40,
    )
    .prop_map(|parts| parts.concat())
}

proptest! {
    /// Extracts cover exactly the non-separator tokens, in order, and are
    /// maximal runs.
    #[test]
    fn extracts_partition_non_separator_tokens(html in arb_html()) {
        let tokens = tokenize(&html);
        let extracts = derive_extracts(&tokens);

        // Flattened extract tokens = the non-separator subsequence.
        let flattened: Vec<&str> = extracts
            .iter()
            .flat_map(|e| e.tokens.iter().map(|t| t.text.as_str()))
            .collect();
        let expected: Vec<&str> = tokens
            .iter()
            .filter(|t| !is_separator(t))
            .map(|t| t.text.as_str())
            .collect();
        prop_assert_eq!(flattened, expected);

        for e in &extracts {
            prop_assert!(!e.is_empty());
            // Separator-free.
            prop_assert!(e.tokens.iter().all(|t| !is_separator(t)));
            // Maximal: the token before `start` (if any) is a separator.
            if e.start > 0 {
                prop_assert!(is_separator(&tokens[e.start - 1]));
            }
            let end = e.start + e.len();
            if end < tokens.len() {
                prop_assert!(is_separator(&tokens[end]));
            }
            // start indexes the first token.
            prop_assert_eq!(&tokens[e.start].text, &e.tokens[0].text);
        }

        // Indices are consecutive from zero.
        for (i, e) in extracts.iter().enumerate() {
            prop_assert_eq!(e.index, i);
        }
    }

    /// A needle cut from the page's own reduced stream is always found at
    /// the position it came from.
    #[test]
    fn planted_needles_are_found(
        html in arb_html(),
        start_frac in 0.0f64..1.0,
        len in 1usize..5,
    ) {
        let stream = MatchStream::new(&tokenize(&html));
        prop_assume!(stream.len() >= len);
        let start = ((stream.len() - len) as f64 * start_frac) as usize;
        let needle: Vec<&str> = stream.texts()[start..start + len]
            .iter()
            .map(String::as_str)
            .collect();
        let hits = stream.find_all(&needle);
        prop_assert!(hits.contains(&start), "{needle:?} not at {start}: {hits:?}");
        // Soundness: every reported hit matches.
        for h in hits {
            for (k, n) in needle.iter().enumerate() {
                prop_assert_eq!(&stream.texts()[h + k], n);
            }
        }
    }

    /// `contains` agrees with `find_all`.
    #[test]
    fn contains_consistent(html in arb_html(), word in "[A-Za-z0-9]{1,8}") {
        let stream = MatchStream::new(&tokenize(&html));
        let needle = [word.as_str()];
        prop_assert_eq!(stream.contains(&needle), !stream.find_all(&needle).is_empty());
    }
}
