//! Solver microbenchmarks: the WSAT(OIP)-style local search, the exact
//! solvers, and the EM loop of the probabilistic approach.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tableseg_csp::encoder::{encode, EncodeOptions};
use tableseg_csp::exact::{solve_bnb, solve_ordered};
use tableseg_csp::wsat::{solve, WsatConfig};
use tableseg_extract::{build_observations, Observations};
use tableseg_html::lexer::tokenize;
use tableseg_html::Token;
use tableseg_prob::{segment_prob, ProbOptions};
use tableseg_sitegen::paper_sites;
use tableseg_sitegen::site::generate;

fn site_observations(spec: &tableseg_sitegen::site::SiteSpec, page: usize) -> Observations {
    let site = generate(spec);
    let list = tokenize(&site.pages[page].list_html);
    let details: Vec<Vec<Token>> = site.pages[page]
        .detail_html
        .iter()
        .map(|d| tokenize(d))
        .collect();
    let refs: Vec<&[Token]> = details.iter().map(Vec::as_slice).collect();
    build_observations(&list, &[], &refs)
}

fn bench_wsat(c: &mut Criterion) {
    let mut group = c.benchmark_group("wsat");
    for spec in [paper_sites::butler(), paper_sites::allegheny()] {
        let obs = site_observations(&spec, 0);
        let enc = encode(&obs, &EncodeOptions::default());
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{} ({} vars)", spec.name, enc.model.num_vars)),
            &enc.model,
            |b, model| b.iter(|| solve(black_box(model), &WsatConfig::default())),
        );
    }
    group.finish();
}

fn bench_exact(c: &mut Criterion) {
    let obs = site_observations(&paper_sites::butler(), 0);
    let enc = encode(&obs, &EncodeOptions::default());
    c.bench_function("bnb/butler", |b| {
        b.iter(|| solve_bnb(black_box(&enc.model), 1_000_000))
    });

    let candidates: Vec<Vec<u32>> = obs.items.iter().map(|it| it.pages.clone()).collect();
    let refs: Vec<&[u32]> = candidates.iter().map(Vec::as_slice).collect();
    c.bench_function("ordered_dp/butler", |b| {
        b.iter(|| solve_ordered(black_box(&refs), obs.num_records))
    });
}

fn bench_prob_em(c: &mut Criterion) {
    let mut group = c.benchmark_group("prob_em");
    for spec in [paper_sites::butler(), paper_sites::canada411()] {
        let obs = site_observations(&spec, 0);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{} ({} extracts)", spec.name, obs.len())),
            &obs,
            |b, obs| b.iter(|| segment_prob(black_box(obs), &ProbOptions::default())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_wsat, bench_exact, bench_prob_em);
criterion_main!(benches);
