//! Front-end microbenchmarks: tokenization, interning, template
//! induction, observation-table construction, and the naive-vs-indexed
//! extract matcher comparison.
//!
//! The paper argues its content-based inference is fast because "the
//! number of text strings on a typical Web page is very small compared to
//! the number of HTML tags" (Section 1); these benches quantify each
//! pipeline stage.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use tableseg_bench::matchbench;
use tableseg_extract::build_observations;
use tableseg_html::lexer::tokenize;
use tableseg_html::{Interner, Token};
use tableseg_sitegen::paper_sites;
use tableseg_sitegen::site::generate;
use tableseg_template::{assess, induce};

fn bench_tokenize(c: &mut Criterion) {
    let mut group = c.benchmark_group("tokenize");
    for spec in [paper_sites::allegheny(), paper_sites::superpages()] {
        let site = generate(&spec);
        let html = &site.pages[0].list_html;
        group.throughput(Throughput::Bytes(html.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(&spec.name), html, |b, html| {
            b.iter(|| tokenize(black_box(html)))
        });
    }
    group.finish();
}

fn bench_template(c: &mut Criterion) {
    let mut group = c.benchmark_group("template_induction");
    for spec in [paper_sites::allegheny(), paper_sites::amazon()] {
        let site = generate(&spec);
        let pages: Vec<Vec<Token>> = site.pages.iter().map(|p| tokenize(&p.list_html)).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(&spec.name),
            &pages,
            |b, pages| {
                b.iter(|| {
                    let ind = induce(black_box(pages));
                    assess(&ind, pages)
                })
            },
        );
    }
    group.finish();
}

fn bench_observations(c: &mut Criterion) {
    let mut group = c.benchmark_group("observation_table");
    for spec in [paper_sites::butler(), paper_sites::canada411()] {
        let site = generate(&spec);
        let list = tokenize(&site.pages[0].list_html);
        let details: Vec<Vec<Token>> = site.pages[0]
            .detail_html
            .iter()
            .map(|d| tokenize(d))
            .collect();
        let refs: Vec<&[Token]> = details.iter().map(Vec::as_slice).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(&spec.name),
            &(list, refs),
            |b, (list, refs)| b.iter(|| build_observations(black_box(list), &[], refs)),
        );
    }
    group.finish();
}

fn bench_intern(c: &mut Criterion) {
    let mut group = c.benchmark_group("intern");
    for spec in [paper_sites::allegheny(), paper_sites::superpages()] {
        let site = generate(&spec);
        let tokens = tokenize(&site.pages[0].list_html);
        group.throughput(Throughput::Elements(tokens.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(&spec.name),
            &tokens,
            |b, tokens| {
                b.iter(|| {
                    let mut interner = Interner::new();
                    interner.intern_tokens(black_box(tokens))
                })
            },
        );
    }
    group.finish();
}

/// The headline comparison: per-page extract matching via the naive
/// string scan (`match_extracts_naive`, the test oracle) vs. the indexed
/// symbol matcher used in production. Same fixtures as the
/// `BENCH_frontend.json` smoke run.
fn bench_matcher(c: &mut Criterion) {
    let mut group = c.benchmark_group("matcher");
    let fixtures = matchbench::corpus();
    for f in fixtures.iter().filter(|f| {
        f.page == 0 && ["Butler County", "Superpages", "Canada 411"].contains(&f.site.as_str())
    }) {
        group.throughput(Throughput::Elements(f.extracts.len() as u64));
        group.bench_with_input(BenchmarkId::new("naive", &f.site), f, |b, f| {
            b.iter(|| black_box(f.run_naive()))
        });
        group.bench_with_input(BenchmarkId::new("indexed", &f.site), f, |b, f| {
            b.iter(|| black_box(f.run_indexed()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_tokenize,
    bench_intern,
    bench_template,
    bench_observations,
    bench_matcher
);
criterion_main!(benches);
