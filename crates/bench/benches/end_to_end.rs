//! End-to-end runtime per list page — the paper's RT claim: "The CSP and
//! probabilistic algorithms were exceedingly fast, taking only a few
//! seconds to run in all cases" (Section 6.1). One bench per
//! representative site (clean grid, free-form dirty, large shared-value).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tableseg::{prepare, CspSegmenter, ProbSegmenter, Segmenter, SitePages};
use tableseg_sitegen::paper_sites;
use tableseg_sitegen::site::generate;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    for spec in [
        paper_sites::allegheny(),
        paper_sites::superpages(),
        paper_sites::canada411(),
        paper_sites::amazon(),
    ] {
        let site = generate(&spec);
        let details: Vec<String> = site.pages[0].detail_html.clone();
        let lists: Vec<String> = site.pages.iter().map(|p| p.list_html.clone()).collect();

        for (label, segmenter) in [
            ("csp", &CspSegmenter::default() as &dyn Segmenter),
            ("prob", &ProbSegmenter::default()),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, &spec.name),
                &(&lists, &details),
                |b, (lists, details)| {
                    b.iter(|| {
                        let list_refs: Vec<&str> = lists.iter().map(String::as_str).collect();
                        let detail_refs: Vec<&str> = details.iter().map(String::as_str).collect();
                        let prepared = prepare(&SitePages {
                            list_pages: list_refs,
                            target: 0,
                            detail_pages: detail_refs,
                        });
                        segmenter.segment(black_box(&prepared.observations))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
