//! Emits `BENCH_induce.json`: the template-induction microbenchmark —
//! Hirschberg pair-LCS vs. the histogram-LCS core on the candidate
//! streams of the twelve simulated paper sites, plus the multi-page
//! rolling-merge quality-vs-cost curve (2 → 10 sample pages per site).
//!
//! The histogram ≡ Hirschberg differential checks run before anything is
//! timed (equal LCS length, valid traces, matching template lengths and
//! usability verdicts at every page count); the run then fails if the
//! 10-page induction's template quality degrades below the 2-page
//! baseline — a merge that loosens the template is a regression, not a
//! feature.
//!
//! Flags:
//!
//! * `--iters N` — corpus passes per timed path (default 3; the fastest
//!   pass is reported);
//! * `--out PATH` — where to write the JSON (default `BENCH_induce.json`);
//! * `--skip-quality-gate` — report the quality curve without failing on
//!   degradation (for exploratory sweeps);
//! * `--help` — this text.

use std::process::ExitCode;

use tableseg_bench::inducebench;

fn usage() {
    eprintln!("usage: inducebench [--iters N] [--out PATH] [--skip-quality-gate]");
}

fn main() -> ExitCode {
    let mut iters = 3usize;
    let mut out_path = String::from("BENCH_induce.json");
    let mut quality_gate = true;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--iters" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--iters needs a positive number");
                    return ExitCode::FAILURE;
                };
                iters = n.max(1);
            }
            "--out" => {
                let Some(path) = it.next() else {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                };
                out_path = path;
            }
            "--skip-quality-gate" => quality_gate = false,
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag {other}");
                usage();
                return ExitCode::FAILURE;
            }
        }
    }

    eprintln!("running induction benchmark ({iters} pass(es) per path) ...");
    let bench = inducebench::run_induce_bench(iters, &[2, 4, 6, 8, 10]);
    eprintln!("differential checks passed (histogram ≡ Hirschberg)");

    let json = inducebench::render_json(&bench);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "pair LCS: Hirschberg {:.2} ms vs histogram {:.2} ms → {:.2}x over {} pairs",
        bench.pair.hirschberg_ns as f64 / 1e6,
        bench.pair.histogram_ns as f64 / 1e6,
        bench.pair.speedup(),
        bench.pair.pairs
    );
    for p in &bench.curve {
        eprintln!(
            "merge {:>2} pages: {:.2} ms, slot fraction {:.3}, {} usable sites",
            p.pages,
            p.induce_ns as f64 / 1e6,
            p.mean_largest_slot_fraction,
            p.usable_sites
        );
    }
    eprintln!("written to {out_path}");
    if quality_gate && !bench.quality_non_degrading() {
        eprintln!(
            "FAIL: 10-page template quality degraded below the 2-page baseline \
             (fraction {:.4} < {:.4} or usable {} < {})",
            bench.deep().mean_largest_slot_fraction,
            bench.baseline().mean_largest_slot_fraction,
            bench.deep().usable_sites,
            bench.baseline().usable_sites
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
