//! Diagnostic: template quality per site (not a paper artifact).

use tableseg_html::lexer::tokenize;
use tableseg_sitegen::paper_sites;
use tableseg_sitegen::site::generate;
use tableseg_template::{assess, induce};

fn main() {
    for spec in paper_sites::all() {
        let site = generate(&spec);
        let pages: Vec<Vec<tableseg_html::Token>> =
            site.pages.iter().map(|p| tokenize(&p.list_html)).collect();
        let ind = induce(&pages);
        let q = assess(&ind, &pages);
        println!(
            "{:<24} template_len={:<4} slots={:<3} total_text={:<5} largest={:<5} frac={:.2} usable={}",
            spec.name,
            q.template_len,
            q.non_empty_slots,
            q.total_slot_text,
            q.largest_slot_text,
            q.largest_slot_fraction,
            q.is_usable()
        );
        if std::env::args().any(|a| a == "-v") {
            let tpl: Vec<&str> = ind
                .template
                .tokens
                .iter()
                .map(|t| t.text.as_str())
                .collect();
            println!("  template: {tpl:?}");
        }
    }
}
