//! Emits `BENCH_scale.json`: the streaming front-end scale benchmark.
//!
//! A procedurally generated [`Universe`](tableseg_sitegen::Universe) of
//! sites streams through the work-stealing batch engine; every page runs
//! through both the allocating token lexer and the zero-copy span lexer,
//! with the allocating path as a differential oracle on sampled sites.
//! The report carries the tokenize-stage and whole-front-end speedups,
//! per-core throughput (pages/sec, bytes/sec), and the half-vs-full
//! peak-RSS snapshot that proves the front end runs in memory bounded by
//! sites in flight, not total pages.
//!
//! Flags:
//!
//! * `--sites N` — universe size (default 1000);
//! * `--threads N` — batch worker threads (default: available
//!   parallelism);
//! * `--fault-rate F` — chaos injection rate, `0.0..=1.0` (default 0);
//! * `--oracle-every N` — differential-oracle sampling stride
//!   (default 16; 0 disables);
//! * `--out PATH` — where to write the JSON (default `BENCH_scale.json`);
//! * `--min-speedup X` — fail unless the tokenize-stage speedup is at
//!   least `X` (default: no gate; CI passes 3);
//! * `--min-pages-per-sec N` — fail below this per-core zero-copy
//!   throughput (default: no gate);
//! * `--min-sites-per-sec N` — fail below this per-core full-pipeline
//!   throughput (default: no gate; implies the pipeline leg);
//! * `--no-pipeline` — skip the full-pipeline leg (template + both
//!   solvers per site) and report front-end numbers only;
//! * `--max-rss-mb N` — fail if the full-run peak RSS exceeds `N` MiB
//!   (default: no gate);
//! * `--rss-tolerance F` — allowed half→full peak-RSS growth fraction
//!   before the flatness gate fails (default 0.25; only checked when an
//!   RSS gate or `--check-flat` is active);
//! * `--check-flat` — fail unless the peak RSS stayed flat across the
//!   two halves;
//! * `--help` — this text.

use std::process::ExitCode;

use tableseg::batch;
use tableseg_bench::scalebench::{render_json, run_scale_bench, ScaleConfig};

fn usage() {
    eprintln!(
        "usage: scalebench [--sites N] [--threads N] [--fault-rate F] [--oracle-every N] \
         [--out PATH] [--min-speedup X] [--min-pages-per-sec N] [--min-sites-per-sec N] \
         [--no-pipeline] [--max-rss-mb N] [--rss-tolerance F] [--check-flat]"
    );
}

fn main() -> ExitCode {
    let mut cfg = ScaleConfig {
        threads: batch::default_threads(),
        ..ScaleConfig::default()
    };
    let mut out_path = String::from("BENCH_scale.json");
    let mut min_speedup: Option<f64> = None;
    let mut min_pages_per_sec: Option<f64> = None;
    let mut min_sites_per_sec: Option<f64> = None;
    let mut max_rss_mb: Option<u64> = None;
    let mut rss_tolerance = 0.25f64;
    let mut check_flat = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--sites" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--sites needs a positive number");
                    return ExitCode::FAILURE;
                };
                cfg.sites = n.max(1);
            }
            "--threads" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--threads needs a positive number");
                    return ExitCode::FAILURE;
                };
                cfg.threads = n.max(1);
            }
            "--fault-rate" => {
                let Some(f) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("--fault-rate needs a probability");
                    return ExitCode::FAILURE;
                };
                cfg.fault_rate = f.clamp(0.0, 1.0);
            }
            "--oracle-every" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--oracle-every needs a number (0 disables)");
                    return ExitCode::FAILURE;
                };
                cfg.oracle_every = n;
            }
            "--out" => {
                let Some(path) = it.next() else {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                };
                out_path = path;
            }
            "--min-speedup" => {
                let Some(f) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("--min-speedup needs a number");
                    return ExitCode::FAILURE;
                };
                min_speedup = Some(f);
            }
            "--min-pages-per-sec" => {
                let Some(f) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("--min-pages-per-sec needs a number");
                    return ExitCode::FAILURE;
                };
                min_pages_per_sec = Some(f);
            }
            "--min-sites-per-sec" => {
                let Some(f) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("--min-sites-per-sec needs a number");
                    return ExitCode::FAILURE;
                };
                min_sites_per_sec = Some(f);
            }
            "--no-pipeline" => cfg.pipeline = false,
            "--max-rss-mb" => {
                let Some(n) = it.next().and_then(|v| v.parse::<u64>().ok()) else {
                    eprintln!("--max-rss-mb needs a number");
                    return ExitCode::FAILURE;
                };
                max_rss_mb = Some(n);
            }
            "--rss-tolerance" => {
                let Some(f) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("--rss-tolerance needs a fraction");
                    return ExitCode::FAILURE;
                };
                rss_tolerance = f.max(0.0);
            }
            "--check-flat" => check_flat = true,
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag {other}");
                usage();
                return ExitCode::FAILURE;
            }
        }
    }

    if min_sites_per_sec.is_some() && !cfg.pipeline {
        eprintln!("--min-sites-per-sec needs the pipeline leg (drop --no-pipeline)");
        return ExitCode::FAILURE;
    }

    eprintln!(
        "scale: {} sites on {} thread(s), fault rate {:.2}, oracle every {}{} ...",
        cfg.sites,
        cfg.threads,
        cfg.fault_rate,
        cfg.oracle_every,
        if cfg.pipeline { ", full pipeline" } else { "" }
    );
    let bench = run_scale_bench(&cfg);

    let json = render_json(&bench);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "tokenize: lexer {:.2} ms vs scan {:.2} ms → {:.2}x | front end {:.2}x",
        bench.tokenize_ns as f64 / 1e6,
        bench.scan_ns as f64 / 1e6,
        bench.tokenize_speedup(),
        bench.frontend_speedup()
    );
    eprintln!(
        "throughput: {:.0} pages/s, {:.1} MB/s per core over {} pages / {:.1} MB \
         ({} oracle site(s) agreed; written to {out_path})",
        bench.pages_per_sec(),
        bench.bytes_per_sec() / 1e6,
        bench.pages,
        bench.bytes as f64 / 1e6,
        bench.oracle_sites
    );
    if cfg.pipeline {
        eprintln!(
            "pipeline: {:.1} sites/s per core ({} records, {} page(s) failed, {:.2} s summed)",
            bench.sites_per_sec(),
            bench.records,
            bench.pipeline_pages_failed,
            bench.pipeline_ns as f64 / 1e9
        );
    }
    if let (Some(half), Some(full)) = (bench.rss_half_bytes, bench.rss_full_bytes) {
        eprintln!(
            "peak RSS: {:.1} MiB after half, {:.1} MiB after full (ratio {:.3})",
            half as f64 / (1 << 20) as f64,
            full as f64 / (1 << 20) as f64,
            bench.rss_ratio().unwrap_or(0.0)
        );
    }

    let mut failed = false;
    if let Some(min) = min_speedup {
        if bench.tokenize_speedup() < min {
            eprintln!(
                "FAIL: tokenize-stage speedup {:.2}x below the {min:.2}x gate",
                bench.tokenize_speedup()
            );
            failed = true;
        }
    }
    if let Some(min) = min_pages_per_sec {
        if bench.pages_per_sec() < min {
            eprintln!(
                "FAIL: {:.0} pages/s below the {min:.0} pages/s gate",
                bench.pages_per_sec()
            );
            failed = true;
        }
    }
    if let Some(min) = min_sites_per_sec {
        if bench.sites_per_sec() < min {
            eprintln!(
                "FAIL: {:.1} sites/s below the {min:.1} sites/s gate",
                bench.sites_per_sec()
            );
            failed = true;
        }
    }
    if let Some(cap) = max_rss_mb {
        match bench.rss_full_bytes {
            Some(full) if full > cap * (1 << 20) => {
                eprintln!(
                    "FAIL: peak RSS {:.1} MiB above the {cap} MiB cap",
                    full as f64 / (1 << 20) as f64
                );
                failed = true;
            }
            None => {
                eprintln!("FAIL: --max-rss-mb set but peak RSS is unreadable");
                failed = true;
            }
            _ => {}
        }
    }
    if check_flat {
        match bench.rss_flat(rss_tolerance) {
            Some(true) => {}
            Some(false) => {
                eprintln!(
                    "FAIL: peak RSS grew {:.1}% over the second half (tolerance {:.1}%)",
                    (bench.rss_ratio().unwrap_or(1.0) - 1.0) * 100.0,
                    rss_tolerance * 100.0
                );
                failed = true;
            }
            None => {
                eprintln!("FAIL: --check-flat set but peak RSS is unreadable");
                failed = true;
            }
        }
    }
    if failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
