//! Emits `BENCH_obs.json`: the observability-overhead benchmark.
//!
//! The metrics layer promises to be near-free when disabled (a single
//! relaxed atomic load at `Recorder` construction, then branch-skipped
//! bumps) and cheap when enabled (array index + saturating add per
//! counter). This benchmark holds it to that: the full batch pipeline
//! runs over the twelve simulated paper sites with collection disabled
//! and again with it enabled, `--iters` passes each, and the fastest
//! pass per leg is compared. The acceptance bar (documented in
//! EXPERIMENTS.md) is ≤ 2% overhead for the enabled leg.
//!
//! Flags:
//!
//! * `--iters N` — passes per leg (default 5; the fastest is reported);
//! * `--threads N` — batch worker threads (default: available
//!   parallelism);
//! * `--out PATH` — where to write the JSON (default `BENCH_obs.json`);
//! * `--help` — this text.

use std::process::ExitCode;
use std::time::Instant;

use tableseg::batch;
use tableseg::obs;
use tableseg_bench::corpus::BenchJson;
use tableseg_bench::run_sites;
use tableseg_sitegen::paper_sites;

fn usage() {
    eprintln!("usage: obsbench [--iters N] [--threads N] [--out PATH]");
}

fn main() -> ExitCode {
    let mut iters = 5usize;
    let mut threads = batch::default_threads();
    let mut out_path = String::from("BENCH_obs.json");
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--iters" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--iters needs a positive number");
                    return ExitCode::FAILURE;
                };
                iters = n.max(1);
            }
            "--threads" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--threads needs a positive number");
                    return ExitCode::FAILURE;
                };
                threads = n;
            }
            "--out" => {
                let Some(path) = it.next() else {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                };
                out_path = path;
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag {other}");
                usage();
                return ExitCode::FAILURE;
            }
        }
    }

    let specs = paper_sites::all();
    eprintln!(
        "obs overhead: {} sites, {iters} pass(es) per leg, {threads} thread(s)",
        specs.len()
    );

    // Fastest-of-N per leg: the minimum is the least-noisy estimator for
    // a deterministic workload under scheduler jitter. One warmup pass
    // (disabled) pre-faults the generated corpus and code paths.
    let time_leg = |enabled: bool| -> u128 {
        obs::set_enabled(enabled);
        let mut best = u128::MAX;
        for _ in 0..iters {
            let start = Instant::now();
            let outcome = run_sites(&specs, threads);
            let elapsed = start.elapsed().as_nanos();
            assert!(!outcome.runs.is_empty(), "batch produced no runs");
            best = best.min(elapsed);
        }
        best
    };
    let _warmup = {
        obs::set_enabled(false);
        run_sites(&specs, threads)
    };

    let disabled_ns = time_leg(false);
    let enabled_ns = time_leg(true);
    obs::set_enabled(false);
    let overhead_pct = (enabled_ns as f64 - disabled_ns as f64) / disabled_ns as f64 * 100.0;

    // A final enabled pass snapshots the counter totals so the report
    // shows what the enabled leg actually collected.
    obs::set_enabled(true);
    let outcome = run_sites(&specs, threads);
    obs::set_enabled(false);
    let mut counter_rows = String::new();
    let counters: Vec<(&str, u64)> = outcome.metrics.counters.iter().collect();
    for (i, (label, total)) in counters.iter().enumerate() {
        if i > 0 {
            counter_rows.push_str(",\n");
        }
        counter_rows.push_str(&format!("    {}: {total}", obs::json_str(label)));
    }

    let mut j = BenchJson::new("obs_overhead");
    j.field("sites", specs.len())
        .field("iters", iters)
        .field("threads", threads)
        .field("disabled_ns", disabled_ns)
        .field("enabled_ns", enabled_ns)
        .raw("overhead_pct", format!("{overhead_pct:.3}"))
        .raw("counters", format!("{{\n{counter_rows}\n  }}"));
    let json = j.finish();
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "disabled {:.2} ms vs enabled {:.2} ms → {overhead_pct:+.2}% (written to {out_path})",
        disabled_ns as f64 / 1e6,
        enabled_ns as f64 / 1e6
    );
    ExitCode::SUCCESS
}
