//! Emits `BENCH_detect.json`: region-detection precision/recall on
//! multi-table pages with noise regions (navigation bars, ad blocks,
//! link footers), sub-record F on nested-record pages through the full
//! recursive pass (parent segmentation → slot derivation → nested
//! template induction + CSP sub-segmentation), and the paper-corpus
//! pass-through check (every single-table page must detect as one
//! whole-page region).
//!
//! Exits non-zero when a gate fails — CI runs this as the detection
//! accuracy gate.
//!
//! Flags:
//!
//! * `--seed N` — scenario-cohort data seed (default 0);
//! * `--out PATH` — where to write the JSON (default `BENCH_detect.json`);
//! * `--min-region-f X` — region F gate (default 0.9);
//! * `--min-nested-f X` — nested sub-record F gate (default 0.8);
//! * `--help` — this text.

use std::process::ExitCode;

use tableseg_bench::detectbench;

fn usage() {
    eprintln!("usage: detectbench [--seed N] [--out PATH] [--min-region-f X] [--min-nested-f X]");
}

fn main() -> ExitCode {
    let mut seed = 0u64;
    let mut out_path = String::from("BENCH_detect.json");
    let mut min_region_f = 0.9f64;
    let mut min_nested_f = 0.8f64;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--seed" => {
                let Some(n) = it.next().and_then(|v| v.parse::<u64>().ok()) else {
                    eprintln!("--seed needs a number");
                    return ExitCode::FAILURE;
                };
                seed = n;
            }
            "--out" => {
                let Some(path) = it.next() else {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                };
                out_path = path;
            }
            "--min-region-f" => {
                let Some(x) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("--min-region-f needs a number");
                    return ExitCode::FAILURE;
                };
                min_region_f = x;
            }
            "--min-nested-f" => {
                let Some(x) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("--min-nested-f needs a number");
                    return ExitCode::FAILURE;
                };
                min_nested_f = x;
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag {other}");
                usage();
                return ExitCode::FAILURE;
            }
        }
    }

    eprintln!("running detection/nested benchmark (seed {seed}) ...");
    let bench = detectbench::run_detect_bench(seed);

    let json = detectbench::render_json(&bench, min_region_f, min_nested_f);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }

    let region = bench.region_metrics();
    let nested = bench.nested_metrics();
    eprintln!(
        "region detection over {} sites: {region}",
        bench.region_sites.len()
    );
    eprintln!(
        "nested sub-records over {} sites: {nested}",
        bench.nested_sites.len()
    );
    eprintln!(
        "paper pass-through: {}/{} pages single-region",
        bench.paper_pass_through, bench.paper_pages
    );
    eprintln!("written to {out_path}");

    if !bench.gates_pass(min_region_f, min_nested_f) {
        eprintln!(
            "FAIL: gate violated (region F {:.4} vs {min_region_f}, nested F {:.4} vs \
             {min_nested_f}, pass-through {}/{})",
            region.f1, nested.f1, bench.paper_pass_through, bench.paper_pages
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
