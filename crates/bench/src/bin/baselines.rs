//! Baseline comparison (AB4): the layout-based methods of Section 2 —
//! DOM `<table>/<tr>` heuristic, IEPAD-style repeated tag patterns, and a
//! RoadRunner-style union-free grammar — against the paper's CSP and
//! probabilistic approaches, over the twelve simulated sites.

use std::ops::Range;

use tableseg::{CspSegmenter, ProbSegmenter};
use tableseg_baselines::{domtable, iepad, roadrunner, textseg};
use tableseg_bench::{evaluate_segmenter, prepare_page_cached, prepare_site};
use tableseg_eval::classify::{classify_spans, PageCounts};
use tableseg_eval::Metrics;
use tableseg_sitegen::paper_sites;
use tableseg_sitegen::site::generate;

fn main() {
    let mut dom_total = PageCounts::default();
    let mut iepad_total = PageCounts::default();
    let mut csp_total = PageCounts::default();
    let mut prob_total = PageCounts::default();
    let mut rr_failures = 0usize;
    let mut rr_ok = 0usize;

    println!(
        "| {:<22} | {:>4} | {:>5} | {:>10} | {:>4} | {:>4} |",
        "site", "DOM", "IEPAD", "RoadRunner", "CSP", "prob"
    );
    for spec in paper_sites::all() {
        let ps = prepare_site(&spec);
        let site = &ps.site;
        let mut dom_site = PageCounts::default();
        let mut iepad_site = PageCounts::default();
        let mut csp_site = PageCounts::default();
        let mut prob_site = PageCounts::default();
        for page in 0..site.pages.len() {
            let truth: Vec<Range<usize>> = site.pages[page]
                .truth
                .records
                .iter()
                .map(|r| r.start..r.end)
                .collect();
            let html = &site.pages[page].list_html;
            dom_site = dom_site.add(&classify_spans(&domtable::segment(html).records, &truth));
            iepad_site = iepad_site.add(&classify_spans(&iepad::segment(html).records, &truth));

            let prepared = prepare_page_cached(&ps, page);
            let (c, _) = evaluate_segmenter(site, page, &prepared, &CspSegmenter::default());
            csp_site = csp_site.add(&c);
            let (p, _) = evaluate_segmenter(site, page, &prepared, &ProbSegmenter::default());
            prob_site = prob_site.add(&p);
        }
        let rr = roadrunner::induce(&site.pages[0].list_html, &site.pages[1].list_html);
        let rr_label = match &rr {
            Ok(g) => {
                rr_ok += 1;
                format!("{} slots", roadrunner::data_slots(g))
            }
            Err(_) => {
                rr_failures += 1;
                "FAILED".to_owned()
            }
        };
        println!(
            "| {:<22} | {:>4} | {:>5} | {:>10} | {:>4} | {:>4} |",
            spec.name,
            format!("{}", dom_site.cor),
            format!("{}", iepad_site.cor),
            rr_label,
            format!("{}", csp_site.cor),
            format!("{}", prob_site.cor),
        );
        dom_total = dom_total.add(&dom_site);
        iepad_total = iepad_total.add(&iepad_site);
        csp_total = csp_total.add(&csp_site);
        prob_total = prob_total.add(&prob_site);
    }

    println!("\naggregates (all 24 list pages):");
    println!("  DOM heuristic:  {}", Metrics::from_counts(&dom_total));
    println!("  IEPAD-style:    {}", Metrics::from_counts(&iepad_total));
    println!(
        "  RoadRunner:     grammar induced on {rr_ok}/12 sites, failed (disjunction) on {rr_failures}"
    );
    println!("  CSP:            {}", Metrics::from_counts(&csp_total));
    println!("  probabilistic:  {}", Metrics::from_counts(&prob_total));

    // ---- the Section 2.2 contrast: plain-text tables are much easier ----
    // Render the same records as a whitespace-aligned plain-text table and
    // segment with the classical alignment method.
    let mut exact = 0usize;
    let mut total = 0usize;
    for spec in paper_sites::all() {
        let site = generate(&spec);
        for page in &site.pages {
            let rows: Vec<Vec<String>> = page
                .truth
                .records
                .iter()
                .map(|r| r.values.clone())
                .collect();
            let text = textseg::render_text_table(&rows, 28);
            if let Some(table) = textseg::segment(&text) {
                total += rows.len();
                exact += table
                    .records
                    .iter()
                    .zip(&rows)
                    .filter(|(got, want)| {
                        got.iter()
                            .filter(|c| !c.is_empty())
                            .eq(want.iter().filter(|c| !c.is_empty()))
                    })
                    .count();
            } else {
                total += rows.len();
            }
        }
    }
    println!(
        "\nSection 2.2 contrast — the same records as whitespace-aligned plain text,\n\
         segmented by classical column alignment: {exact}/{total} records exact\n\
         (\"Record segmentation from plain text documents is ... a much easier task\")"
    );
}
