//! Regenerates the paper's **Tables 1–3** — the Superpages running
//! example: the observation table (`D_i`), the assignment of extracts to
//! records, and the positions of extracts on detail pages.

use tableseg::{CspSegmenter, Segmenter};
use tableseg_extract::build_observations;
use tableseg_extract::positions::render_table;
use tableseg_html::lexer::tokenize;
use tableseg_html::Token;

fn main() {
    // The paper's Figure 1 / Table 1 example: two "John Smith" listings
    // sharing a phone number, plus a third record.
    let list = tokenize(
        "<tr><td>John Smith</td><td>221 Washington</td><td>New Holland</td><td>(740) 335-5555</td></tr>\
         <tr><td>John Smith</td><td>221R Washington St</td><td>Wash CH</td><td>(740) 335-5555</td></tr>\
         <tr><td>George W. Smith</td><td>Findlay, OH</td><td>(419) 423-1212</td></tr>",
    );
    let details = [
        tokenize("<h1>John Smith</h1><p>221 Washington</p><p>New Holland</p><p>(740) 335-5555</p>"),
        tokenize("<h1>John Smith</h1><p>221R Washington St</p><p>Wash CH</p><p>(740) 335-5555</p>"),
        tokenize("<h1>George W. Smith</h1><p>Findlay, OH</p><p>(419) 423-1212</p>"),
    ];
    let detail_refs: Vec<&[Token]> = details.iter().map(Vec::as_slice).collect();
    let obs = build_observations(&list, &[], &detail_refs);

    println!("Table 1: observations of extracts on detail pages D_i\n");
    println!("{}", obs.render_table());

    let outcome = CspSegmenter::default().segment(&obs);
    println!("Table 2: assignment of extracts to records (CSP solution)\n");
    println!("{}", outcome.segmentation.render_table(&obs));

    println!("Table 3: positions of extracts on detail pages\n");
    println!("{}", render_table(&obs));
}
