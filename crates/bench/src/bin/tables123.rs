//! Regenerates the paper's **Tables 1–3** — the Superpages running
//! example: the observation table (`D_i`), the assignment of extracts to
//! records, and the positions of extracts on detail pages.

fn main() {
    print!("{}", tableseg_bench::tables123_report());
}
