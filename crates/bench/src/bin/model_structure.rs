//! Regenerates the structure of the paper's **Figures 2 and 3**: the
//! graphical model for record extraction, without and with the record
//! period model π.

use tableseg_prob::model::describe;

fn main() {
    println!("Figure 2: probabilistic model for record extraction\n");
    println!("{}", describe(false));
    println!("Figure 3: the model extended with the record period model pi\n");
    println!("{}", describe(true));
}
