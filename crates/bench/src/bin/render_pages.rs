//! Regenerates the paper's **Figure 1**: example list and detail pages
//! from the (simulated) Superpages site. Prints the first list page and
//! the first record's detail page; pass a site name prefix (e.g.
//! `amazon`) to render a different site.

use tableseg_sitegen::paper_sites;
use tableseg_sitegen::site::generate;

fn main() {
    let wanted = std::env::args().nth(1).unwrap_or_else(|| "super".into());
    let spec = paper_sites::all()
        .into_iter()
        .find(|s| s.name.to_lowercase().starts_with(&wanted.to_lowercase()))
        .unwrap_or_else(|| {
            eprintln!("no site matching {wanted:?}; using Superpages");
            paper_sites::superpages()
        });
    let site = generate(&spec);
    println!("==== {} — list page 1 ====\n", spec.name);
    println!("{}\n", site.pages[0].list_html);
    println!("==== {} — detail page of record 1 ====\n", spec.name);
    println!("{}", site.pages[0].detail_html[0]);
}
