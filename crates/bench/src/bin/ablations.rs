//! Ablation experiments over the design choices DESIGN.md calls out:
//!
//! * **AB1** — CSP with vs without the Section 4.2 position constraints;
//! * **AB2** — probabilistic approach with vs without the hierarchical
//!   record-period model π (Figure 3 vs Figure 2);
//! * **AB3** — induced table slot vs the whole-page fallback everywhere;
//! * **AB5** — the hybrid segmenter of Section 7 ("a combination of the
//!   two") vs each approach alone;
//! * **AB6** — the paper's proposed fix for numbered sites: continue the
//!   entry numbering on the next result page so the numbers stop being
//!   page-invariant ("The entry numbers of the next page will be
//!   different from others in the sample", Section 6.3).

use tableseg::{prepare, CspSegmenter, HybridSegmenter, ProbSegmenter, Segmenter, SitePages};
use tableseg_bench::{evaluate_segmenter, prepare_page_cached, prepare_site, run_site_with};
use tableseg_eval::classify::{classify, PageCounts};
use tableseg_eval::Metrics;
use tableseg_sitegen::paper_sites;

fn aggregate(runs: &[tableseg_bench::PageRun]) -> (PageCounts, PageCounts) {
    let mut prob = PageCounts::default();
    let mut csp = PageCounts::default();
    for r in runs {
        prob = prob.add(&r.prob);
        csp = csp.add(&r.csp);
    }
    (prob, csp)
}

fn main() {
    let sites = paper_sites::all();

    // -------- AB1 / AB2: segmenter variants over the full corpus --------
    let mut full_runs = Vec::new();
    let mut ablated_runs = Vec::new();
    for spec in &sites {
        eprintln!("running {} ...", spec.name);
        full_runs.extend(run_site_with(
            spec,
            &ProbSegmenter::default(),
            &CspSegmenter::default(),
        ));
        ablated_runs.extend(run_site_with(
            spec,
            &ProbSegmenter::without_period_model(),
            &CspSegmenter::without_position_constraints(),
        ));
    }
    let (prob_full, csp_full) = aggregate(&full_runs);
    let (prob_nope, csp_nopos) = aggregate(&ablated_runs);

    println!("AB1 — CSP position constraints (Section 4.2):");
    println!(
        "  with:    {}   (Cor={} InC={} FN={} FP={})",
        Metrics::from_counts(&csp_full),
        csp_full.cor,
        csp_full.incor,
        csp_full.fneg,
        csp_full.fpos
    );
    println!(
        "  without: {}   (Cor={} InC={} FN={} FP={})",
        Metrics::from_counts(&csp_nopos),
        csp_nopos.cor,
        csp_nopos.incor,
        csp_nopos.fneg,
        csp_nopos.fpos
    );

    println!("\nAB2 — record-period model pi (Section 5.2.2, Figure 3 vs Figure 2):");
    println!(
        "  with:    {}   (Cor={} InC={} FN={} FP={})",
        Metrics::from_counts(&prob_full),
        prob_full.cor,
        prob_full.incor,
        prob_full.fneg,
        prob_full.fpos
    );
    println!(
        "  without: {}   (Cor={} InC={} FN={} FP={})",
        Metrics::from_counts(&prob_nope),
        prob_nope.cor,
        prob_nope.incor,
        prob_nope.fneg,
        prob_nope.fpos
    );

    // -------- AB3: template table slot vs whole page --------------------
    let mut with_template = PageCounts::default();
    let mut whole_page = PageCounts::default();
    let csp = CspSegmenter::default();
    for spec in &sites {
        let ps = prepare_site(spec);
        let site = &ps.site;
        for page in 0..site.pages.len() {
            // Normal pipeline (template when usable, induced once per site).
            let prepared = prepare_page_cached(&ps, page);
            let (counts, _) = evaluate_segmenter(site, page, &prepared, &csp);
            with_template = with_template.add(&counts);

            // Forced whole page: give the pipeline only the target page so
            // no template can be induced.
            let details: Vec<&str> = site.pages[page]
                .detail_html
                .iter()
                .map(String::as_str)
                .collect();
            let forced = prepare(&SitePages {
                list_pages: vec![&site.pages[page].list_html],
                target: 0,
                detail_pages: details,
            });
            let spans: Vec<std::ops::Range<usize>> = site.pages[page]
                .truth
                .records
                .iter()
                .map(|r| r.start..r.end)
                .collect();
            let truth = tableseg_eval::classify::truth_of_extracts(&forced.extract_offsets, &spans);
            let outcome = csp.segment(&forced.observations);
            let counts = classify(
                &outcome.segmentation.records(),
                &truth,
                site.pages[page].truth.len(),
            );
            whole_page = whole_page.add(&counts);
        }
    }
    println!("\nAB3 — page-template table slot vs whole-page fallback (CSP):");
    println!(
        "  template pipeline: {}   (Cor={} InC={} FN={} FP={})",
        Metrics::from_counts(&with_template),
        with_template.cor,
        with_template.incor,
        with_template.fneg,
        with_template.fpos
    );
    println!(
        "  whole page always: {}   (Cor={} InC={} FN={} FP={})",
        Metrics::from_counts(&whole_page),
        whole_page.cor,
        whole_page.incor,
        whole_page.fneg,
        whole_page.fpos
    );
    println!(
        "\nNote: the whole-page variant also loses the all-list-pages filter\n\
         (one sample page), so extraneous chrome joins the observation table\n\
         — the paper's note-b failure mode in its purest form."
    );

    // -------- AB5: the Section 7 hybrid ---------------------------------
    let hybrid = HybridSegmenter::default();
    let mut hybrid_total = PageCounts::default();
    for spec in &sites {
        let ps = prepare_site(spec);
        for page in 0..ps.site.pages.len() {
            let prepared = prepare_page_cached(&ps, page);
            let (counts, _) = evaluate_segmenter(&ps.site, page, &prepared, &hybrid);
            hybrid_total = hybrid_total.add(&counts);
        }
    }
    println!("\nAB5 — combined segmenter (Section 7: CSP first, probabilistic fill-in):");
    println!(
        "  CSP alone:     {}   (Cor={} InC={} FN={} FP={})",
        Metrics::from_counts(&csp_full),
        csp_full.cor,
        csp_full.incor,
        csp_full.fneg,
        csp_full.fpos
    );
    println!(
        "  prob alone:    {}   (Cor={} InC={} FN={} FP={})",
        Metrics::from_counts(&prob_full),
        prob_full.cor,
        prob_full.incor,
        prob_full.fneg,
        prob_full.fpos
    );
    println!(
        "  hybrid:        {}   (Cor={} InC={} FN={} FP={})",
        Metrics::from_counts(&hybrid_total),
        hybrid_total.cor,
        hybrid_total.incor,
        hybrid_total.fneg,
        hybrid_total.fpos
    );

    // -------- AB6: continued numbering repairs the book sites -----------
    let mut numbered = PageCounts::default();
    let mut continued = PageCounts::default();
    let mut fallback_before = 0usize;
    let mut fallback_after = 0usize;
    for base in [
        paper_sites::amazon(),
        paper_sites::bn_books(),
        paper_sites::minnesota(),
    ] {
        let mut fixed = base.clone();
        fixed.continuous_numbering = true;
        for (spec, acc, fb) in [
            (&base, &mut numbered, &mut fallback_before),
            (&fixed, &mut continued, &mut fallback_after),
        ] {
            let ps = prepare_site(spec);
            for page in 0..ps.site.pages.len() {
                let prepared = prepare_page_cached(&ps, page);
                if prepared.used_whole_page {
                    *fb += 1;
                }
                let (counts, _) =
                    evaluate_segmenter(&ps.site, page, &prepared, &CspSegmenter::default());
                *acc = acc.add(&counts);
            }
        }
    }
    println!("\nAB6 — numbered sites with page-continued numbering (the paper's proposed fix):");
    println!(
        "  numbers restart per page:  {}   ({} of 6 pages fell back to whole page)",
        Metrics::from_counts(&numbered),
        fallback_before
    );
    println!(
        "  numbers continue across:   {}   ({} of 6 pages fell back to whole page)",
        Metrics::from_counts(&continued),
        fallback_after
    );
}
