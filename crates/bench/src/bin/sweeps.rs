//! Parameter sweeps over the simulated workload.
//!
//! * **table size** — records per page 5..80: accuracy and wall time of
//!   both approaches (the scalability behind the paper's "exceedingly
//!   fast" claim);
//! * **missing-field probability** — 0.0..0.5: how sparse records degrade
//!   each approach;
//! * **shared-value rate** — white-pages sites where many records share a
//!   city: the density of position-constraint interactions;
//! * **ε tolerance** — the probabilistic dirty-data knob on the Michigan
//!   quirk site.

use std::time::Instant;

use tableseg::prob::ProbOptions;
use tableseg::{prepare, CspSegmenter, ProbSegmenter, Segmenter, SitePages};
use tableseg_bench::{evaluate_segmenter, page_truth, prepare_page_cached, prepare_site};
use tableseg_eval::classify::classify;
use tableseg_eval::Metrics;
use tableseg_sitegen::domains::Domain;
use tableseg_sitegen::quirks::Quirk;
use tableseg_sitegen::site::{generate, LayoutStyle, SiteSpec};

fn spec(domain: Domain, records: usize, missing: f64, seed: u64) -> SiteSpec {
    SiteSpec {
        name: format!("sweep-{domain:?}-{records}-{missing}"),
        domain,
        layout: LayoutStyle::GridTable,
        records_per_page: vec![records, records],
        quirks: vec![],
        missing_field_prob: missing,
        continuous_numbering: false,
        overlap: 0,
        seed,
    }
}

fn run_one(s: &SiteSpec, segmenter: &dyn Segmenter) -> (Metrics, f64) {
    let ps = prepare_site(s);
    let prepared = prepare_page_cached(&ps, 0);
    let start = Instant::now();
    let (counts, _) = evaluate_segmenter(&ps.site, 0, &prepared, segmenter);
    let secs = start.elapsed().as_secs_f64();
    (Metrics::from_counts(&counts), secs)
}

fn main() {
    println!("sweep 1: table size (records per page), white pages, missing=0.1");
    println!("| records | CSP F | CSP time | prob F | prob time |");
    for records in [5usize, 10, 20, 40, 80] {
        let s = spec(Domain::WhitePages, records, 0.1, 1234 + records as u64);
        let (csp_m, csp_t) = run_one(&s, &CspSegmenter::default());
        let (prob_m, prob_t) = run_one(&s, &ProbSegmenter::default());
        println!(
            "| {records:>7} | {:>5.2} | {:>7.3}s | {:>6.2} | {:>8.3}s |",
            csp_m.f1, csp_t, prob_m.f1, prob_t
        );
    }

    println!("\nsweep 2: missing-field probability, property tax, 15 records");
    println!("| p(missing) | CSP F | prob F |");
    for missing in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5] {
        let s = spec(Domain::PropertyTax, 15, missing, 4321);
        let (csp_m, _) = run_one(&s, &CspSegmenter::default());
        let (prob_m, _) = run_one(&s, &ProbSegmenter::default());
        println!(
            "| {missing:>10.1} | {:>5.2} | {:>6.2} |",
            csp_m.f1, prob_m.f1
        );
    }

    println!("\nsweep 3: shared-town white pages (position-constraint stress)");
    println!("| records | CSP F | relaxed | prob F |");
    for records in [5usize, 10, 20, 40] {
        let s = SiteSpec {
            quirks: vec![Quirk::SharedValueMissingOnDetail { field: "city" }],
            ..spec(Domain::WhitePages, records, 0.05, 9000 + records as u64)
        };
        let ps = prepare_site(&s);
        let prepared = prepare_page_cached(&ps, 0);
        let (csp_counts, relaxed) =
            evaluate_segmenter(&ps.site, 0, &prepared, &CspSegmenter::default());
        let (prob_counts, _) =
            evaluate_segmenter(&ps.site, 0, &prepared, &ProbSegmenter::default());
        println!(
            "| {records:>7} | {:>5.2} | {:>7} | {:>6.2} |",
            Metrics::from_counts(&csp_counts).f1,
            relaxed,
            Metrics::from_counts(&prob_counts).f1
        );
    }

    println!("\nsweep 4: epsilon tolerance on the Michigan quirk (dirty data)");
    println!("| epsilon | prob F |");
    let michigan = tableseg_sitegen::paper_sites::michigan();
    let site = generate(&michigan);
    for eps in [1e-12, 1e-9, 1e-6, 1e-3, 1e-1] {
        let details: Vec<&str> = site.pages[0]
            .detail_html
            .iter()
            .map(String::as_str)
            .collect();
        let prepared = prepare(&SitePages {
            list_pages: site.list_htmls(),
            target: 0,
            detail_pages: details,
        });
        let seg = ProbSegmenter {
            options: ProbOptions {
                epsilon: eps,
                ..ProbOptions::default()
            },
        };
        let truth = page_truth(&site, 0, &prepared);
        let outcome = seg.segment(&prepared.observations);
        let counts = classify(
            &outcome.segmentation.records(),
            &truth,
            site.pages[0].truth.len(),
        );
        println!(
            "| {eps:>7.0e} | {:>6.2} |",
            Metrics::from_counts(&counts).f1
        );
    }
}
