//! The robustness sweep: accuracy vs. fault rate over the twelve
//! simulated paper sites.
//!
//! For each fault probability in `0.0, 0.1, ..., 0.5`, every fault class
//! of the chaos layer is armed at that rate and the full pipeline
//! (template → extraction → both segmenters → evaluation) runs over all
//! sites through the fallible batch path — a damaged page degrades or
//! fails its own row, never the process. The per-rate accuracy, outcome
//! counts and injected-fault counts land in `BENCH_robustness.json`.
//!
//! At rate 0 the sweep additionally proves the harness honest:
//!
//! * the chaos-wrapped generator is **byte-identical** to the plain one;
//! * the robust path's Table 4 report matches `tests/golden/table4.txt`.
//!
//! Flags:
//!
//! * `--threads N` — worker threads (default: available parallelism);
//! * `--seeds N` — chaos seeds per rate (default 1; CI uses 3) —
//!   outcome counts and accuracy are aggregated over the seeds;
//! * `--out PATH` — where to write the JSON (default
//!   `BENCH_robustness.json`);
//! * `--skip-golden` — skip the rate-0 golden comparison (for runs
//!   outside the repository checkout);
//! * `--manifest PATH` — enable the observability layer and write a
//!   sweep-wide manifest (metrics and robustness rollup merged over all
//!   rates and seeds; one `rate#R` span subtree per swept rate);
//! * `--help` — this text.

use std::process::ExitCode;

use tableseg::batch;
use tableseg::obs;
use tableseg::robustness::RobustnessReport;
use tableseg::timing::Stage;
use tableseg_bench::corpus::BenchJson;
use tableseg_bench::{run_sites_robust, table4_report, RobustBatchOutcome};
use tableseg_eval::metrics::Metrics;
use tableseg_sitegen::chaos::{apply_chaos, ChaosConfig};
use tableseg_sitegen::paper_sites;
use tableseg_sitegen::site::generate;

/// The swept per-fault probabilities.
const RATES: [f64; 6] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];

/// Base chaos seed; seed `i` of `--seeds N` is `BASE_SEED + i`.
const BASE_SEED: u64 = 0xC0DE;

fn usage() {
    eprintln!(
        "usage: chaossweep [--threads N] [--seeds N] [--out PATH] [--skip-golden] [--manifest PATH]"
    );
}

fn main() -> ExitCode {
    let mut threads = batch::default_threads();
    let mut seeds = 1usize;
    let mut out_path = String::from("BENCH_robustness.json");
    let mut check_golden = true;
    let mut manifest_path: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--threads" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--threads needs a positive number");
                    return ExitCode::FAILURE;
                };
                threads = n;
            }
            "--seeds" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--seeds needs a positive number");
                    return ExitCode::FAILURE;
                };
                seeds = n.max(1);
            }
            "--out" => {
                let Some(path) = it.next() else {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                };
                out_path = path;
            }
            "--skip-golden" => check_golden = false,
            "--manifest" => {
                let Some(path) = it.next() else {
                    eprintln!("--manifest needs an output path");
                    return ExitCode::FAILURE;
                };
                manifest_path = Some(path);
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag {other}");
                usage();
                return ExitCode::FAILURE;
            }
        }
    }
    if manifest_path.is_some() {
        obs::set_enabled(true);
    }

    let specs = paper_sites::all();
    eprintln!(
        "sweeping {} rates x {seeds} seed(s) over {} sites on {threads} thread(s) ...",
        RATES.len(),
        specs.len()
    );

    // Sweep-wide observability rollup: metrics and robustness merged over
    // every rate and seed, one `rate#R` span subtree per swept rate. The
    // merge ignores the ambient enable flag, so this stays a cheap no-op
    // when `--manifest` was not given.
    let mut sweep_metrics = obs::Recorder::default();
    let mut sweep_report = RobustnessReport::new();
    let mut sweep_root = obs::SpanNode::new(obs::SpanKind::Run, "run", 0);

    let mut rate_rows: Vec<String> = Vec::new();
    for rate in RATES {
        // Aggregate over seeds. At rate 0 every seed is a no-op, so one
        // pass suffices (and keeps the golden comparison exact).
        let seed_count = if rate == 0.0 { 1 } else { seeds };
        let mut merged: Option<RobustBatchOutcome> = None;
        for s in 0..seed_count {
            let cfg = ChaosConfig::uniform(rate, BASE_SEED + s as u64);
            let outcome = run_sites_robust(&specs, &cfg, threads);
            merged = Some(match merged {
                None => outcome,
                Some(mut acc) => {
                    acc.report.merge(&outcome.report);
                    acc.runs.extend(outcome.runs);
                    for (slot, &(_, n)) in acc.fault_counts.iter_mut().zip(&outcome.fault_counts) {
                        slot.1 += n;
                    }
                    for (label, times) in outcome.timing.rows() {
                        acc.timing.record(&label, &times);
                    }
                    acc.metrics.merge(&outcome.metrics);
                    acc.spans.nanos += outcome.spans.nanos;
                    acc.spans.children.extend(outcome.spans.children);
                    acc
                }
            });
        }
        let outcome = merged.expect("at least one seed ran");

        sweep_metrics.merge(&outcome.metrics);
        sweep_report.merge(&outcome.report);
        let mut rate_span = outcome.spans.clone();
        rate_span.name = format!("rate#{rate:.1}");
        sweep_root.nanos += rate_span.nanos;
        sweep_root.push(rate_span);

        if rate == 0.0 {
            // Honesty check 1: the chaos wrapper at rate 0 is the
            // identity on every site.
            let cfg = ChaosConfig::uniform(0.0, BASE_SEED);
            for spec in &specs {
                let clean = generate(spec);
                let (wrapped, log) = apply_chaos(&clean, &cfg);
                if wrapped != clean || !log.is_empty() {
                    eprintln!(
                        "FAIL: chaos at rate 0 is not byte-identical for {}",
                        spec.name
                    );
                    return ExitCode::FAILURE;
                }
            }
            // Honesty check 2: the robust path reproduces the golden
            // Table 4 report exactly. Degraded pages are allowed — the
            // whole-page fallback fires on some *clean* sites (the
            // paper's notes a/b); failures are not.
            if outcome.report.failed != 0 {
                eprintln!(
                    "FAIL: rate 0 produced failed pages:\n{}",
                    outcome.report.render()
                );
                return ExitCode::FAILURE;
            }
            if check_golden {
                let golden_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                    .join("../../tests/golden/table4.txt");
                match std::fs::read_to_string(&golden_path) {
                    Ok(golden) => {
                        let report = table4_report(&outcome.runs, false);
                        if report != golden {
                            eprintln!(
                                "FAIL: rate-0 robust-path report differs from {}",
                                golden_path.display()
                            );
                            return ExitCode::FAILURE;
                        }
                        eprintln!("rate 0.0: byte-identical to plain generator, matches golden");
                    }
                    Err(e) => {
                        eprintln!("cannot read {}: {e}", golden_path.display());
                        return ExitCode::FAILURE;
                    }
                }
            }
        }

        let (prob_counts, csp_counts) = outcome.totals();
        let prob = Metrics::from_counts(&prob_counts);
        let csp = Metrics::from_counts(&csp_counts);
        let r = &outcome.report;
        eprintln!(
            "rate {rate:.1}: pages {} ok {} degraded {} failed {} | prob F={:.2} csp F={:.2}",
            r.pages, r.ok, r.degraded, r.failed, prob.f1, csp.f1
        );

        rate_rows.push(render_rate_row(rate, &outcome, &prob, &csp));
    }

    let seed_list: Vec<String> = (0..seeds)
        .map(|s| (BASE_SEED + s as u64).to_string())
        .collect();
    let mut j = BenchJson::new("robustness_sweep");
    j.field("sites", specs.len())
        .raw("seeds", format!("[{}]", seed_list.join(", ")))
        .raw("rates", format!("[\n{}\n  ]", rate_rows.join(",\n")));
    let json = j.finish();
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("written to {out_path}");

    if let Some(path) = manifest_path {
        let mut manifest = obs::Manifest::new("chaossweep")
            .with_config("sites", specs.len())
            .with_config("seeds", seeds)
            .with_config("rates", RATES.map(|r| format!("{r:.1}")).join(","));
        manifest.seeds = (0..seeds).map(|s| BASE_SEED + s as u64).collect();
        manifest.metrics = sweep_metrics;
        manifest.robustness = Some(sweep_report.rollup());
        manifest.root = {
            sweep_root.name = "chaossweep".to_string();
            sweep_root
        };
        manifest.volatile.threads = threads;
        let redact = obs::deterministic_requested();
        match manifest.write_files(std::path::Path::new(&path), redact) {
            Ok(written) => {
                for p in &written {
                    eprintln!("manifest: wrote {}", p.display());
                }
            }
            Err(e) => {
                eprintln!("cannot write manifest {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Renders one per-rate JSON object (hand-rolled; the serde shim is a
/// no-op marker, so JSON is rendered as strings throughout the repo).
fn render_rate_row(
    rate: f64,
    outcome: &RobustBatchOutcome,
    prob: &Metrics,
    csp: &Metrics,
) -> String {
    let r = &outcome.report;
    let mut s = format!(
        "    {{ \"rate\": {rate:.1}, \"pages\": {}, \"ok\": {}, \"degraded\": {}, \"failed\": {},\n",
        r.pages, r.ok, r.degraded, r.failed
    );
    s.push_str(&format!(
        "      \"prob\": {{ \"precision\": {:.4}, \"recall\": {:.4}, \"f1\": {:.4} }},\n",
        prob.precision, prob.recall, prob.f1
    ));
    s.push_str(&format!(
        "      \"csp\": {{ \"precision\": {:.4}, \"recall\": {:.4}, \"f1\": {:.4} }},\n",
        csp.precision, csp.recall, csp.f1
    ));
    s.push_str("      \"faults\": {");
    for (i, (kind, n)) in outcome.fault_counts.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(" \"{}\": {n}", kind.label()));
    }
    s.push_str(" },\n      \"warnings\": {");
    for (i, (label, n)) in r.warnings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(" \"{label}\": {n}"));
    }
    s.push_str(" },\n      \"failures_by_stage\": {");
    for (i, (label, n)) in r.failures_by_stage.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(" \"{label}\": {n}"));
    }
    // Corpus-wide solve total split by solver method and EM phase
    // (nanoseconds; varies run to run, unlike the accuracy fields).
    s.push_str(" },\n      \"solve_ns\": {");
    let rows = outcome.timing.rows();
    let total_ns = |stage: Stage| -> u128 {
        rows.iter()
            .map(|(_, times)| times.get(stage).as_nanos())
            .sum()
    };
    s.push_str(&format!(" \"total\": {}", total_ns(Stage::Solve)));
    for stage in Stage::SOLVE_SPLIT {
        s.push_str(&format!(", \"{}\": {}", stage.label(), total_ns(stage)));
    }
    s.push_str(" } }");
    s
}
