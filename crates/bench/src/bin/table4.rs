//! Regenerates the paper's **Table 4**: per-site record-segmentation
//! results for the probabilistic and CSP approaches over the twelve
//! simulated sites, with aggregate precision / recall / F.
//!
//! Pass `--clean-only` to reproduce the Section 6.3 analysis that excludes
//! the pages for which the CSP could not find a (strict) solution — the
//! paper reports CSP P=0.99 R=0.92 F=0.95 and probabilistic P=0.78 R=1.0
//! F=0.88 on those 17 pages.

use tableseg_bench::{run_sites_parallel, to_rows};
use tableseg_eval::classify::PageCounts;
use tableseg_eval::report::{render_aggregate, render_table4};
use tableseg_sitegen::paper_sites;

fn main() {
    let clean_only = std::env::args().any(|a| a == "--clean-only");

    let specs = paper_sites::all();
    eprintln!("running {} sites in parallel ...", specs.len());
    let all_runs = run_sites_parallel(&specs);

    if clean_only {
        let clean: Vec<_> = all_runs.iter().filter(|r| !r.csp_relaxed).cloned().collect();
        let mut prob = PageCounts::default();
        let mut csp = PageCounts::default();
        for r in &clean {
            prob = prob.add(&r.prob);
            csp = csp.add(&r.csp);
        }
        println!(
            "{}",
            render_aggregate(
                &format!(
                    "Pages where the CSP found a solution ({} of {} pages) — cf. Section 6.3:",
                    clean.len(),
                    all_runs.len()
                ),
                &prob,
                &csp,
            )
        );
        return;
    }

    println!("Table 4: results of automatic record segmentation (simulated sites)\n");
    println!("{}", render_table4(&to_rows(&all_runs)));

    // Paper reference values for comparison.
    println!("Paper (live 2004 sites):  probabilistic P=0.74 R=0.99 F=0.85 | CSP P=0.85 R=0.84 F=0.84");
}
