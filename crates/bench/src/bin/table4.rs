//! Regenerates the paper's **Table 4**: per-site record-segmentation
//! results for the probabilistic and CSP approaches over the twelve
//! simulated sites, with aggregate precision / recall / F.
//!
//! The sites run through the work-stealing batch engine; results are
//! collected in job order, so the report is byte-identical for any
//! `--threads` value.
//!
//! Flags:
//!
//! * `--clean-only` — reproduce the Section 6.3 analysis that excludes
//!   the pages for which the CSP could not find a (strict) solution —
//!   the paper reports CSP P=0.99 R=0.92 F=0.95 and probabilistic P=0.78
//!   R=1.0 F=0.88 on those 17 pages;
//! * `--threads N` — worker threads (default: available parallelism);
//! * `--rt` — append the RT report: per-site wall-clock time per pipeline
//!   stage (tokenize / template / extract / match / solve / decode);
//! * `--bench-json PATH` — additionally run the naive-vs-indexed matcher
//!   microbenchmark over the corpus and write `BENCH_frontend.json`-style
//!   output (corpus shape, wall-clock per path, speedup, per-stage
//!   totals) to PATH;
//! * `--manifest PATH` — enable the observability layer and write the run
//!   manifest (summary JSON at PATH, plus `.jsonl` event-log and `.prom`
//!   Prometheus sidecars; see OBSERVABILITY.md);
//! * `--help` — this text.

use std::process::ExitCode;

use tableseg::batch;
use tableseg::obs;
use tableseg_bench::{corpus, matchbench, run_sites, table4_report};
use tableseg_sitegen::paper_sites;

fn usage() {
    eprintln!(
        "usage: table4 [--clean-only] [--threads N] [--rt] [--bench-json PATH] [--manifest PATH]"
    );
}

fn main() -> ExitCode {
    let mut clean_only = false;
    let mut rt = false;
    let mut bench_json: Option<String> = None;
    let mut manifest_path: Option<String> = None;
    let mut threads = batch::default_threads();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--clean-only" => clean_only = true,
            "--rt" => rt = true,
            "--bench-json" => {
                let Some(path) = it.next() else {
                    eprintln!("--bench-json needs an output path");
                    return ExitCode::FAILURE;
                };
                bench_json = Some(path);
            }
            "--manifest" => {
                let Some(path) = it.next() else {
                    eprintln!("--manifest needs an output path");
                    return ExitCode::FAILURE;
                };
                manifest_path = Some(path);
            }
            "--threads" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--threads needs a positive number");
                    return ExitCode::FAILURE;
                };
                threads = n;
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag {other}");
                usage();
                return ExitCode::FAILURE;
            }
        }
    }
    if manifest_path.is_some() {
        obs::set_enabled(true);
    }

    let specs = paper_sites::all();
    eprintln!("running {} sites on {threads} thread(s) ...", specs.len());
    let outcome = run_sites(&specs, threads);

    print!("{}", table4_report(&outcome.runs, clean_only));

    if rt {
        // Timings vary run to run; keep them off stdout so the report
        // stays byte-identical (and pipeable) with or without --rt.
        eprintln!("\nRT: per-stage wall clock by site ({threads} thread(s))\n");
        eprint!("{}", outcome.timing.render());
        eprintln!("\nRT: solve split by method and EM phase\n");
        eprint!("{}", outcome.timing.render_solve_split());
    }

    if let Some(path) = manifest_path {
        let manifest = outcome
            .manifest("table4", threads)
            .with_config("clean_only", clean_only)
            .with_config("sites", specs.len());
        let redact = obs::deterministic_requested();
        match manifest.write_files(std::path::Path::new(&path), redact) {
            Ok(written) => {
                for p in &written {
                    eprintln!("manifest: wrote {}", p.display());
                }
            }
            Err(e) => {
                eprintln!("cannot write manifest {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = bench_json {
        eprintln!("running matcher microbenchmark ...");
        let bench = matchbench::run_match_bench(7);
        // Corpus-wide per-stage totals from the batch run above.
        let stage_totals = corpus::stage_totals(&outcome.timing);
        let json = matchbench::render_json(&bench, &stage_totals);
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "matcher: naive {:.2} ms vs indexed {:.2} ms over {} pages → {:.2}x (written to {path})",
            bench.naive_ns as f64 / 1e6,
            bench.indexed_ns as f64 / 1e6,
            bench.pages,
            bench.speedup()
        );
    }
    ExitCode::SUCCESS
}
