//! Emits `BENCH_serve.json`: the `tablesegd` closed-loop load benchmark.
//!
//! Boots an in-process daemon on an ephemeral port, measures cold
//! (invalidate-before-every-request) and warm (primed cache,
//! multi-client closed loop) latency over the 12-site paper corpus, and
//! reports p50/p99 per phase, the warm/cold p50 speedup, request
//! throughput and the daemon's cache hit rate.
//!
//! Flags:
//!
//! * `--secs F` — warm closed-loop duration (default 5);
//! * `--clients N` — warm client threads (default 4);
//! * `--rounds N` — cold corpus passes (default 3);
//! * `--threads N` — daemon batch-engine threads (default 2);
//! * `--workers N` — daemon HTTP workers (default 4);
//! * `--out PATH` — where to write the JSON (default `BENCH_serve.json`);
//! * `--min-speedup X` — fail unless warm p50 beats cold p50 by at
//!   least `X`× (default: no gate; CI passes 2);
//! * `--min-hit-rate F` — fail below this cache hit rate (default: no
//!   gate);
//! * `--help` — this text.

use std::process::ExitCode;

use tableseg_bench::servebench::{render_json, run_serve_bench, ServeBenchConfig};

fn usage() {
    eprintln!(
        "usage: servebench [--secs F] [--clients N] [--rounds N] [--threads N] [--workers N] \
         [--out PATH] [--min-speedup X] [--min-hit-rate F]"
    );
}

fn main() -> ExitCode {
    let mut cfg = ServeBenchConfig::default();
    let mut out_path = String::from("BENCH_serve.json");
    let mut min_speedup: Option<f64> = None;
    let mut min_hit_rate: Option<f64> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--secs" => {
                let Some(f) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("--secs needs a duration in seconds");
                    return ExitCode::FAILURE;
                };
                cfg.secs = f.max(0.1);
            }
            "--clients" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--clients needs a positive number");
                    return ExitCode::FAILURE;
                };
                cfg.clients = n.max(1);
            }
            "--rounds" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--rounds needs a positive number");
                    return ExitCode::FAILURE;
                };
                cfg.rounds = n.max(1);
            }
            "--threads" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--threads needs a positive number");
                    return ExitCode::FAILURE;
                };
                cfg.batch_threads = n.max(1);
            }
            "--workers" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--workers needs a positive number");
                    return ExitCode::FAILURE;
                };
                cfg.workers = n.max(1);
            }
            "--out" => {
                let Some(path) = it.next() else {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                };
                out_path = path;
            }
            "--min-speedup" => {
                let Some(x) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("--min-speedup needs a number");
                    return ExitCode::FAILURE;
                };
                min_speedup = Some(x);
            }
            "--min-hit-rate" => {
                let Some(x) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("--min-hit-rate needs a fraction");
                    return ExitCode::FAILURE;
                };
                min_hit_rate = Some(x);
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag: {other}");
                usage();
                return ExitCode::FAILURE;
            }
        }
    }

    let bench = run_serve_bench(&cfg);
    let json = render_json(&cfg, &bench);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    print!("{json}");
    eprintln!(
        "servebench: cold p50 {} us, warm p50 {} us, speedup {:.2}x, {:.1} req/s warm, \
         hit rate {:.4}",
        bench.cold_p50_us, bench.warm_p50_us, bench.speedup_p50, bench.warm_rps, bench.hit_rate
    );

    let mut failed = false;
    if let Some(min) = min_speedup {
        if bench.speedup_p50 < min {
            eprintln!(
                "GATE FAILED: warm/cold p50 speedup {:.2} < required {min:.2}",
                bench.speedup_p50
            );
            failed = true;
        }
    }
    if let Some(min) = min_hit_rate {
        if bench.hit_rate < min {
            eprintln!(
                "GATE FAILED: cache hit rate {:.4} < required {min:.4}",
                bench.hit_rate
            );
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
