//! Emits `BENCH_solver.json`: the solver-layer microbenchmark over the
//! twelve simulated paper sites — pre-overhaul baselines (sequential
//! uncached WSAT, log-space EM) and the previous optimized generation
//! (whole-instance cached-delta WSAT, unmemoized scaled EM) vs. the
//! production solvers (reduced + warm-started component WSAT, memoized
//! CSR E-step) — plus the corpus-wide per-stage totals of a full batch
//! run, with the solve stage split by method.
//!
//! Before anything is written, the batch run's Table 4 report is checked
//! against `tests/golden/table4.txt` — a speedup that changes results is
//! not a speedup.
//!
//! Flags:
//!
//! * `--iters N` — corpus passes per solver path (default 3; the fastest
//!   pass is reported);
//! * `--threads N` — batch worker threads for the stage-total run
//!   (default: available parallelism);
//! * `--out PATH` — where to write the JSON (default `BENCH_solver.json`);
//! * `--skip-golden` — skip the golden Table 4 comparison (for runs
//!   outside the repository checkout);
//! * `--manifest PATH` — enable the observability layer and write the
//!   batch run's manifest (summary JSON plus `.jsonl`/`.prom` sidecars);
//! * `--profile` — include per-component size histograms (strict and
//!   relaxed encodings) in the JSON, for diagnosing reduction regressions;
//! * `--help` — this text.

use std::process::ExitCode;

use tableseg::batch;
use tableseg::obs;
use tableseg_bench::{corpus, run_sites, solvebench, table4_report};
use tableseg_sitegen::paper_sites;

fn usage() {
    eprintln!(
        "usage: solvebench [--iters N] [--threads N] [--out PATH] [--skip-golden] [--manifest PATH] [--profile]"
    );
}

fn main() -> ExitCode {
    let mut iters = 3usize;
    let mut threads = batch::default_threads();
    let mut out_path = String::from("BENCH_solver.json");
    let mut check_golden = true;
    let mut manifest_path: Option<String> = None;
    let mut profile = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--iters" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--iters needs a positive number");
                    return ExitCode::FAILURE;
                };
                iters = n.max(1);
            }
            "--threads" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--threads needs a positive number");
                    return ExitCode::FAILURE;
                };
                threads = n;
            }
            "--out" => {
                let Some(path) = it.next() else {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                };
                out_path = path;
            }
            "--skip-golden" => check_golden = false,
            "--profile" => profile = true,
            "--manifest" => {
                let Some(path) = it.next() else {
                    eprintln!("--manifest needs an output path");
                    return ExitCode::FAILURE;
                };
                manifest_path = Some(path);
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag {other}");
                usage();
                return ExitCode::FAILURE;
            }
        }
    }
    if manifest_path.is_some() {
        obs::set_enabled(true);
    }

    // A full batch run: feeds the per-stage totals and proves the
    // production solvers still reproduce the golden Table 4.
    let specs = paper_sites::all();
    eprintln!("running {} sites on {threads} thread(s) ...", specs.len());
    let outcome = run_sites(&specs, threads);
    if check_golden {
        let golden_path =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/table4.txt");
        match std::fs::read_to_string(&golden_path) {
            Ok(golden) => {
                let report = table4_report(&outcome.runs, false);
                if report != golden {
                    eprintln!(
                        "FAIL: Table 4 report differs from {}",
                        golden_path.display()
                    );
                    return ExitCode::FAILURE;
                }
                eprintln!("Table 4 report matches golden");
            }
            Err(e) => {
                eprintln!("cannot read {}: {e}", golden_path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = &manifest_path {
        let manifest = outcome
            .manifest("solvebench", threads)
            .with_config("iters", iters)
            .with_config("sites", specs.len());
        let redact = obs::deterministic_requested();
        match manifest.write_files(std::path::Path::new(path), redact) {
            Ok(written) => {
                for p in &written {
                    eprintln!("manifest: wrote {}", p.display());
                }
            }
            Err(e) => {
                eprintln!("cannot write manifest {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    eprintln!("running solver microbenchmark ({iters} pass(es) per path) ...");
    let bench = solvebench::run_solve_bench(iters);
    let component_profile = profile.then(|| {
        let fixtures = solvebench::corpus();
        solvebench::component_profile(&fixtures)
    });

    let stage_totals = corpus::stage_totals(&outcome.timing);

    let json = solvebench::render_json(&bench, &stage_totals, component_profile.as_ref());
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "csp: whole-instance {:.2} ms vs reduced {:.2} ms → {:.2}x \
         (reference {:.2} ms, {:.0} flips/s)",
        bench.csp.prev_ns as f64 / 1e6,
        bench.csp.optimized_ns as f64 / 1e6,
        bench.csp.speedup_over_prev(),
        bench.csp.baseline_ns as f64 / 1e6,
        bench.csp.units_per_sec()
    );
    eprintln!(
        "prob: unmemoized {:.2} ms vs memoized {:.2} ms → {:.2}x \
         (log-space {:.2} ms, {:.0} EM iters/s)",
        bench.prob.prev_ns as f64 / 1e6,
        bench.prob.optimized_ns as f64 / 1e6,
        bench.prob.speedup_over_prev(),
        bench.prob.baseline_ns as f64 / 1e6,
        bench.prob.units_per_sec()
    );
    eprintln!(
        "reduction: {} components, {} pruned vars, {} warm-start hits",
        bench.reduction.components, bench.reduction.pruned_vars, bench.reduction.warm_start_hits
    );
    if let Some(p) = &component_profile {
        for (name, hist) in [("strict", &p.strict), ("relaxed", &p.relaxed)] {
            let cells: Vec<String> = hist
                .iter()
                .map(|(size, n)| format!("{size} vars × {n}"))
                .collect();
            eprintln!("components ({name}): {}", cells.join(", "));
        }
    }
    eprintln!(
        "solve stage: {:.2}x over prev ({:.2}x over reference) across {} pages \
         (written to {out_path})",
        bench.solve_speedup(),
        bench.reference_speedup(),
        bench.pages
    );
    ExitCode::SUCCESS
}
