//! The streaming front-end scale benchmark behind `BENCH_scale.json`:
//! the zero-copy span lexer ([`tableseg_html::scan()`]) vs. the allocating
//! token lexer ([`tableseg_html::lexer::tokenize`]) over a procedurally
//! generated [`Universe`] of sites, sharded across the work-stealing
//! batch engine.
//!
//! Each site is one batch job: the site streams out of the universe,
//! both front ends run over every page, and only a small per-site
//! summary survives — sites in flight bound memory, not total pages.
//! Two things are measured per site:
//!
//! * **tokenize stage** — the lexer alone: [`tokenize`] vs. [`scan()`]
//!   over every list and detail page. This is the headline speedup.
//! * **front end** — what the pipeline actually does with the result:
//!   list pages are interned (plus, on the baseline, token
//!   materialization), detail pages become [`PageIndex`]es — via
//!   [`PageIndex::build`] over owned tokens on the baseline, via
//!   [`PageIndex::from_scanned`] over borrowed spans on the zero-copy
//!   path.
//!
//! Every `oracle_every`-th site runs the allocating lexer as a
//! **differential oracle**: token streams, interner contents and page
//! indexes must agree exactly, or the run panics — a front end that
//! changes tokens is not a front end.
//!
//! Memory flatness is proven by splitting the universe in half: the
//! process peak RSS (`VmHWM`) is snapshotted after the first half and
//! again after the second. A streaming front end's peak is set by the
//! sites in flight, so the second half must not move it by more than a
//! small tolerance ([`ScaleBench::rss_flat`]).
//!
//! Throughput (`pages_per_sec`, `bytes_per_sec`) is **per-core**: total
//! pages (bytes) over the summed zero-copy front-end nanoseconds across
//! all jobs. Summed work time is thread-count-invariant, which makes
//! the number a stable CI regression gate.
//!
//! A third leg runs the **full pipeline** per site — template induction
//! ([`SiteTemplate::build`]), per-page preparation, and both solvers
//! ([`CspSegmenter`], [`ProbSegmenter`]) — yielding `sites_per_sec`, the
//! end-to-end throughput the solver-layer optimizations move. Like the
//! front-end numbers it divides by summed per-worker nanoseconds, so it
//! is thread-count-invariant too. Pages the solver rejects (chaos-
//! damaged universes) are counted, not fatal.

use std::time::Instant;

use tableseg::{CspSegmenter, ProbSegmenter, Segmenter, SiteTemplate};
use tableseg_extract::PageIndex;
use tableseg_html::lexer::tokenize;
use tableseg_html::{scan, Interner};
use tableseg_sitegen::{GeneratedSite, Universe, UniverseConfig};

use crate::corpus::BenchJson;
use tableseg::batch;

/// Scale-benchmark configuration.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Universe size (sites).
    pub sites: usize,
    /// Batch worker threads.
    pub threads: usize,
    /// Universe fault rate (chaos injection; `0.0` = clean pages).
    pub fault_rate: f64,
    /// Run the differential oracle on every `oracle_every`-th site
    /// (site 0 is always checked). `0` disables the oracle.
    pub oracle_every: usize,
    /// Run the full-pipeline leg (template + preparation + both solvers)
    /// per site. Much heavier than the front-end legs; disable for pure
    /// lexer runs.
    pub pipeline: bool,
}

impl Default for ScaleConfig {
    fn default() -> ScaleConfig {
        ScaleConfig {
            sites: 1000,
            threads: batch::default_threads(),
            fault_rate: 0.0,
            oracle_every: 16,
            pipeline: true,
        }
    }
}

/// One site's contribution to the scale totals.
#[derive(Debug, Clone, Copy, Default)]
struct SiteScale {
    pages: usize,
    bytes: usize,
    tokens: usize,
    tokenize_ns: u128,
    scan_ns: u128,
    base_frontend_ns: u128,
    zc_frontend_ns: u128,
    pipeline_ns: u128,
    records: usize,
    pages_failed: usize,
    oracle_checked: bool,
}

/// The corpus-level result of the scale run.
#[derive(Debug, Clone)]
pub struct ScaleBench {
    /// Universe size (sites processed).
    pub sites: usize,
    /// Total pages lexed per leg (list + detail).
    pub pages: usize,
    /// Total page bytes lexed per leg.
    pub bytes: usize,
    /// Total tokens produced by the zero-copy leg.
    pub tokens: usize,
    /// Summed allocating-lexer nanoseconds across all pages.
    pub tokenize_ns: u128,
    /// Summed span-lexer nanoseconds across all pages.
    pub scan_ns: u128,
    /// Summed baseline front-end nanoseconds (tokenize + intern +
    /// [`PageIndex::build`]).
    pub baseline_frontend_ns: u128,
    /// Summed zero-copy front-end nanoseconds (scan + intern +
    /// [`PageIndex::from_scanned`]).
    pub zerocopy_frontend_ns: u128,
    /// Summed full-pipeline nanoseconds (template + preparation + both
    /// solvers per list page); zero when the pipeline leg is disabled.
    pub pipeline_ns: u128,
    /// Records segmented by the full-pipeline CSP pass.
    pub records: usize,
    /// List pages the pipeline leg could not prepare or solve (chaos
    /// damage); counted per solver attempt.
    pub pipeline_pages_failed: usize,
    /// Sites the differential oracle verified.
    pub oracle_sites: usize,
    /// Peak RSS after the first half of the universe, in bytes
    /// (`None` when `/proc/self/status` is unavailable).
    pub rss_half_bytes: Option<u64>,
    /// Peak RSS after the full universe, in bytes.
    pub rss_full_bytes: Option<u64>,
    /// Worker threads used.
    pub threads: usize,
    /// Universe fault rate.
    pub fault_rate: f64,
}

impl ScaleBench {
    /// Allocating-lexer / span-lexer wall-clock ratio (the tokenize
    /// stage alone).
    pub fn tokenize_speedup(&self) -> f64 {
        self.tokenize_ns as f64 / self.scan_ns.max(1) as f64
    }

    /// Baseline / zero-copy front-end wall-clock ratio.
    pub fn frontend_speedup(&self) -> f64 {
        self.baseline_frontend_ns as f64 / self.zerocopy_frontend_ns.max(1) as f64
    }

    /// Per-core zero-copy front-end throughput in pages per second.
    pub fn pages_per_sec(&self) -> f64 {
        self.pages as f64 / (self.zerocopy_frontend_ns.max(1) as f64 / 1e9)
    }

    /// Per-core zero-copy front-end throughput in bytes per second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bytes as f64 / (self.zerocopy_frontend_ns.max(1) as f64 / 1e9)
    }

    /// Per-core full-pipeline throughput in sites per second (`0.0` when
    /// the pipeline leg is disabled).
    pub fn sites_per_sec(&self) -> f64 {
        if self.pipeline_ns == 0 {
            return 0.0;
        }
        self.sites as f64 / (self.pipeline_ns as f64 / 1e9)
    }

    /// Peak-RSS growth over the second half of the universe, as a
    /// `full / half` ratio (`None` when RSS was unreadable).
    pub fn rss_ratio(&self) -> Option<f64> {
        let (half, full) = (self.rss_half_bytes?, self.rss_full_bytes?);
        Some(full as f64 / half.max(1) as f64)
    }

    /// `true` when doubling the processed pages moved the peak RSS by
    /// at most `tolerance` (e.g. `0.10` allows 10% growth) — the
    /// fixed-memory claim of the streaming front end.
    pub fn rss_flat(&self, tolerance: f64) -> Option<bool> {
        self.rss_ratio().map(|r| r <= 1.0 + tolerance)
    }
}

/// Reads the process peak resident set (`VmHWM`) in bytes.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Runs the full pipeline over one site: template induction across its
/// list pages, per-page preparation, and both solvers per page. Returns
/// `(records, pages_failed)`; failures (degenerate chaos-damaged pages)
/// are absorbed per page via [`Segmenter::try_segment`].
fn pipeline_site(site: &GeneratedSite, out: &mut SiteScale) {
    let csp = CspSegmenter::default();
    let prob = ProbSegmenter::default();
    let t = Instant::now();
    match SiteTemplate::try_build(&site.list_htmls()) {
        Ok(template) => {
            for (target, gp) in site.pages.iter().enumerate() {
                let details: Vec<&str> = gp.detail_html.iter().map(|d| d.as_str()).collect();
                let prepared =
                    match tableseg::try_prepare_with_template(&template, target, &details) {
                        Ok(p) => p,
                        Err(_) => {
                            out.pages_failed += 1;
                            continue;
                        }
                    };
                match csp.try_segment(&prepared.observations) {
                    Ok(o) => out.records += o.segmentation.num_records,
                    Err(_) => out.pages_failed += 1,
                }
                if prob.try_segment(&prepared.observations).is_err() {
                    out.pages_failed += 1;
                }
            }
        }
        Err(_) => out.pages_failed += site.pages.len(),
    }
    out.pipeline_ns = t.elapsed().as_nanos();
}

/// Runs both front ends over one site, returning its scale summary.
///
/// # Panics
///
/// Panics if `oracle` is set and the zero-copy front end diverges from
/// the allocating lexer on any page.
fn scale_site(site: &GeneratedSite, oracle: bool) -> SiteScale {
    let mut pages: Vec<&str> = Vec::new();
    let mut list_count = 0usize;
    for gp in &site.pages {
        pages.push(&gp.list_html);
        list_count += 1;
    }
    for gp in &site.pages {
        for d in &gp.detail_html {
            pages.push(d);
        }
    }

    let mut out = SiteScale {
        pages: pages.len(),
        bytes: pages.iter().map(|p| p.len()).sum(),
        oracle_checked: oracle,
        ..SiteScale::default()
    };

    // Tokenize stage, baseline: the allocating lexer over every page.
    let t = Instant::now();
    for p in &pages {
        std::hint::black_box(tokenize(p));
    }
    out.tokenize_ns = t.elapsed().as_nanos();

    // Tokenize stage, zero-copy: the span lexer over every page.
    let t = Instant::now();
    let mut tokens = 0usize;
    for p in &pages {
        tokens += std::hint::black_box(scan(p)).len();
    }
    out.scan_ns = t.elapsed().as_nanos();
    out.tokens = tokens;

    // Front end, baseline: owned tokens for list pages (interned) and
    // detail pages (indexed through the list-page interner).
    let t = Instant::now();
    let mut interner = Interner::new();
    for p in &pages[..list_count] {
        let toks = tokenize(p);
        std::hint::black_box(interner.intern_tokens(&toks));
        std::hint::black_box(&toks);
    }
    for p in &pages[list_count..] {
        let toks = tokenize(p);
        std::hint::black_box(PageIndex::build(&toks, &interner));
    }
    out.base_frontend_ns = t.elapsed().as_nanos();
    let base_interner_len = interner.len();

    // Front end, zero-copy: spans all the way down. List pages still
    // materialize owned tokens (induction consumes them); detail pages
    // never do — spans project straight into a PageIndex.
    let t = Instant::now();
    let mut interner = Interner::new();
    for p in &pages[..list_count] {
        let scanned = scan(p);
        std::hint::black_box(interner.intern_scanned(&scanned, p));
        std::hint::black_box(scanned.to_tokens(p));
    }
    for p in &pages[list_count..] {
        let scanned = scan(p);
        std::hint::black_box(PageIndex::from_scanned(&scanned, p, &interner));
    }
    out.zc_frontend_ns = t.elapsed().as_nanos();

    if oracle {
        assert_eq!(
            interner.len(),
            base_interner_len,
            "zero-copy interner diverged from oracle"
        );
        for p in &pages {
            let scanned = scan(p);
            assert_eq!(
                scanned.to_tokens(p),
                tokenize(p),
                "span lexer diverged from the allocating oracle"
            );
        }
        for p in &pages[list_count..] {
            let scanned = scan(p);
            let toks = tokenize(p);
            assert_eq!(
                PageIndex::from_scanned(&scanned, p, &interner),
                PageIndex::build(&toks, &interner),
                "scanned page index diverged from the token-built oracle"
            );
        }
    }
    out
}

/// Streams the universe through the batch engine, both front ends per
/// site, in two halves with a peak-RSS snapshot after each.
pub fn run_scale_bench(cfg: &ScaleConfig) -> ScaleBench {
    let universe = Universe::new(UniverseConfig {
        sites: cfg.sites,
        fault_rate: cfg.fault_rate,
        ..UniverseConfig::default()
    });

    let mid = cfg.sites / 2;
    let run_half = |range: std::ops::Range<usize>| -> Vec<SiteScale> {
        let jobs: Vec<usize> = range.collect();
        batch::execute(cfg.threads, jobs, |_, i| {
            let site = universe.site(i);
            let oracle = cfg.oracle_every > 0 && i % cfg.oracle_every == 0;
            let mut scale = scale_site(&site, oracle);
            if cfg.pipeline {
                pipeline_site(&site, &mut scale);
            }
            scale
        })
    };

    let mut scales = run_half(0..mid);
    let rss_half_bytes = peak_rss_bytes();
    scales.extend(run_half(mid..cfg.sites));
    let rss_full_bytes = peak_rss_bytes();

    let mut bench = ScaleBench {
        sites: scales.len(),
        pages: 0,
        bytes: 0,
        tokens: 0,
        tokenize_ns: 0,
        scan_ns: 0,
        baseline_frontend_ns: 0,
        zerocopy_frontend_ns: 0,
        pipeline_ns: 0,
        records: 0,
        pipeline_pages_failed: 0,
        oracle_sites: 0,
        rss_half_bytes,
        rss_full_bytes,
        threads: cfg.threads,
        fault_rate: cfg.fault_rate,
    };
    for s in &scales {
        bench.pages += s.pages;
        bench.bytes += s.bytes;
        bench.tokens += s.tokens;
        bench.tokenize_ns += s.tokenize_ns;
        bench.scan_ns += s.scan_ns;
        bench.baseline_frontend_ns += s.base_frontend_ns;
        bench.zerocopy_frontend_ns += s.zc_frontend_ns;
        bench.pipeline_ns += s.pipeline_ns;
        bench.records += s.records;
        bench.pipeline_pages_failed += s.pages_failed;
        bench.oracle_sites += usize::from(s.oracle_checked);
    }
    bench
}

/// Renders the benchmark as the `BENCH_scale.json` document.
pub fn render_json(bench: &ScaleBench) -> String {
    let rss = match (bench.rss_half_bytes, bench.rss_full_bytes) {
        (Some(half), Some(full)) => format!(
            "{{ \"half_bytes\": {half}, \"full_bytes\": {full}, \"ratio\": {:.3} }}",
            bench.rss_ratio().unwrap_or(0.0)
        ),
        _ => "{ \"unavailable\": true }".to_string(),
    };
    let mut j = BenchJson::new("frontend_scale");
    j.raw(
        "universe",
        format!(
            "{{ \"sites\": {}, \"pages\": {}, \"bytes\": {}, \"tokens\": {}, \
             \"fault_rate\": {:.2} }}",
            bench.sites, bench.pages, bench.bytes, bench.tokens, bench.fault_rate
        ),
    )
    .field("threads", bench.threads)
    .raw(
        "tokenize",
        format!(
            "{{ \"baseline_ns\": {}, \"scan_ns\": {}, \"speedup\": {:.2} }}",
            bench.tokenize_ns,
            bench.scan_ns,
            bench.tokenize_speedup()
        ),
    )
    .raw(
        "frontend",
        format!(
            "{{ \"baseline_ns\": {}, \"zerocopy_ns\": {}, \"speedup\": {:.2} }}",
            bench.baseline_frontend_ns,
            bench.zerocopy_frontend_ns,
            bench.frontend_speedup()
        ),
    )
    .raw(
        "throughput",
        format!(
            "{{ \"pages_per_sec\": {:.0}, \"bytes_per_sec\": {:.0} }}",
            bench.pages_per_sec(),
            bench.bytes_per_sec()
        ),
    )
    .raw(
        "pipeline",
        if bench.pipeline_ns == 0 {
            "{ \"skipped\": true }".to_string()
        } else {
            format!(
                "{{ \"pipeline_ns\": {}, \"sites_per_sec\": {:.1}, \"records\": {}, \
                 \"pages_failed\": {} }}",
                bench.pipeline_ns,
                bench.sites_per_sec(),
                bench.records,
                bench.pipeline_pages_failed
            )
        },
    )
    .raw("peak_rss", rss)
    .raw(
        "oracle",
        format!(
            "{{ \"sites_checked\": {}, \"agrees\": true }}",
            bench.oracle_sites
        ),
    );
    j.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ScaleConfig {
        ScaleConfig {
            sites: 6,
            threads: 2,
            fault_rate: 0.0,
            oracle_every: 2,
            pipeline: false,
        }
    }

    #[test]
    fn small_universe_runs_and_agrees() {
        let bench = run_scale_bench(&small_cfg());
        assert_eq!(bench.sites, 6);
        assert!(bench.pages > 6, "every site has list + detail pages");
        assert!(bench.bytes > 0 && bench.tokens > 0);
        assert_eq!(bench.oracle_sites, 3, "sites 0, 2, 4 are checked");
        assert!(bench.tokenize_ns > 0 && bench.scan_ns > 0);
        assert_eq!(bench.pipeline_ns, 0, "pipeline leg disabled");
        assert_eq!(bench.sites_per_sec(), 0.0);
    }

    #[test]
    fn pipeline_leg_segments_the_universe() {
        let bench = run_scale_bench(&ScaleConfig {
            pipeline: true,
            ..small_cfg()
        });
        assert!(bench.pipeline_ns > 0);
        assert!(bench.sites_per_sec() > 0.0);
        assert!(
            bench.records > 0,
            "clean universe sites must segment into records"
        );
        assert_eq!(bench.pipeline_pages_failed, 0, "clean universe");
    }

    #[test]
    fn faulty_universe_still_agrees_with_oracle() {
        let bench = run_scale_bench(&ScaleConfig {
            fault_rate: 0.3,
            oracle_every: 1,
            ..small_cfg()
        });
        assert_eq!(bench.oracle_sites, bench.sites);
    }

    #[test]
    fn totals_are_thread_count_invariant() {
        let one = run_scale_bench(&ScaleConfig {
            threads: 1,
            pipeline: true,
            ..small_cfg()
        });
        let four = run_scale_bench(&ScaleConfig {
            threads: 4,
            pipeline: true,
            ..small_cfg()
        });
        assert_eq!(one.pages, four.pages);
        assert_eq!(one.bytes, four.bytes);
        assert_eq!(one.tokens, four.tokens);
        assert_eq!(one.records, four.records);
        assert_eq!(one.pipeline_pages_failed, four.pipeline_pages_failed);
    }

    #[test]
    fn peak_rss_is_readable_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(peak_rss_bytes().unwrap_or(0) > 0);
        }
    }

    #[test]
    fn json_shape() {
        let bench = ScaleBench {
            sites: 100,
            pages: 1000,
            bytes: 5_000_000,
            tokens: 800_000,
            tokenize_ns: 9_000_000,
            scan_ns: 3_000_000,
            baseline_frontend_ns: 20_000_000,
            zerocopy_frontend_ns: 8_000_000,
            pipeline_ns: 2_000_000_000,
            records: 4000,
            pipeline_pages_failed: 0,
            oracle_sites: 7,
            rss_half_bytes: Some(100 << 20),
            rss_full_bytes: Some(101 << 20),
            threads: 4,
            fault_rate: 0.0,
        };
        assert!((bench.tokenize_speedup() - 3.0).abs() < 1e-9);
        assert_eq!(bench.rss_flat(0.10), Some(true));
        assert_eq!(bench.rss_flat(0.001), Some(false));
        let json = render_json(&bench);
        assert!(json.contains("\"schema\": \"tableseg.bench/v2\""));
        assert!(json.contains("\"bench\": \"frontend_scale\""));
        assert!(json.contains("\"speedup\": 3.00"));
        assert!(json.contains("\"pages_per_sec\": 125000"));
        assert!(json.contains("\"sites_per_sec\": 50.0"));
        assert!(json.contains("\"records\": 4000"));
        assert!(json.contains("\"ratio\": 1.010"));
        assert!(json.starts_with('{') && json.ends_with("}\n"));
    }

    #[test]
    fn json_marks_disabled_pipeline_as_skipped() {
        let mut bench = run_scale_bench(&small_cfg());
        bench.pipeline_ns = 0;
        let json = render_json(&bench);
        assert!(json.contains("\"pipeline\": { \"skipped\": true }"));
    }
}
