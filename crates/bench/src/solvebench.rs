//! The solver microbenchmark behind `BENCH_solver.json`: the pre-overhaul
//! solver implementations (sequential uncached WSAT, log-space
//! forward–backward EM) vs. the production ones (cached-delta parallel
//! WSAT, arena-based scaled EM), over the twelve simulated paper sites.
//!
//! The baselines are the real pre-overhaul algorithms, kept in-tree:
//! [`CspOptions::reference_solver`] selects the verbatim sequential WSAT
//! and [`ProbOptions::log_space`] the per-cell log-space EM loop. Both
//! paths solve the *same* observation tables, so the comparison isolates
//! the solver layer — front-end preparation is done once, outside every
//! timed region.

use std::time::Instant;

use tableseg_csp::{segment_csp, CspOptions, CspStatus};
use tableseg_extract::Observations;
use tableseg_prob::{segment_prob, ProbOptions};

use crate::corpus::{paper_prepared, site_count, BenchJson};
use crate::prepare_page_cached;

/// One list page of the benchmark corpus, prepared for segmentation.
pub struct SolveFixture {
    /// Site name.
    pub site: String,
    /// List-page index within the site.
    pub page: usize,
    /// The page's observation table (the solver input).
    pub observations: Observations,
}

/// Builds the benchmark corpus: every list page of every simulated paper
/// site, front end run once per page (sites prepared via
/// [`crate::corpus::paper_prepared`]).
pub fn corpus() -> Vec<SolveFixture> {
    let mut fixtures = Vec::new();
    for ps in paper_prepared() {
        for page in 0..ps.site.pages.len() {
            let prepared = prepare_page_cached(&ps, page);
            fixtures.push(SolveFixture {
                site: ps.spec.name.clone(),
                page,
                observations: prepared.observations,
            });
        }
    }
    fixtures
}

/// Baseline-vs-optimized wall clock for one solver method.
#[derive(Debug, Clone, Copy)]
pub struct MethodBench {
    /// Best (minimum) nanoseconds of one baseline corpus pass.
    pub baseline_ns: u128,
    /// Best (minimum) nanoseconds of one optimized corpus pass.
    pub optimized_ns: u128,
    /// Method-specific work units performed by one optimized pass
    /// (WSAT flips for the CSP, EM iterations for the probabilistic
    /// approach) — the throughput numerator.
    pub work_units: u64,
}

impl MethodBench {
    /// baseline / optimized wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        self.baseline_ns as f64 / self.optimized_ns.max(1) as f64
    }

    /// Work units per second of the optimized pass.
    pub fn units_per_sec(&self) -> f64 {
        self.work_units as f64 / (self.optimized_ns.max(1) as f64 / 1e9)
    }
}

/// The corpus-level result of the solver comparison.
#[derive(Debug, Clone, Copy)]
pub struct SolveBench {
    /// Number of sites in the corpus.
    pub sites: usize,
    /// Number of list pages solved per pass.
    pub pages: usize,
    /// Total extracts across the corpus.
    pub extracts: usize,
    /// The CSP approach (reference sequential WSAT vs. cached-delta).
    pub csp: MethodBench,
    /// The probabilistic approach (log-space vs. scaled EM).
    pub prob: MethodBench,
    /// Corpus passes each path ran; the reported time is the fastest
    /// pass, which is robust to interference from other load.
    pub iters: usize,
}

impl SolveBench {
    /// Whole-solve-stage speedup: summed baselines over summed optimized.
    pub fn solve_speedup(&self) -> f64 {
        (self.csp.baseline_ns + self.prob.baseline_ns) as f64
            / (self.csp.optimized_ns + self.prob.optimized_ns).max(1) as f64
    }
}

/// Times all four solver paths over the full corpus, `iters` times each,
/// verifying up front that each optimized path reproduces its baseline's
/// segmentation on every page.
pub fn run_solve_bench(iters: usize) -> SolveBench {
    let fixtures = corpus();
    let sites = site_count(fixtures.iter().map(|f| f.site.as_str()));
    let extracts = fixtures.iter().map(|f| f.observations.len()).sum();

    let csp_base = CspOptions {
        reference_solver: true,
        ..CspOptions::default()
    };
    let csp_opt = CspOptions::default();
    let prob_base = ProbOptions {
        log_space: true,
        ..ProbOptions::default()
    };
    let prob_opt = ProbOptions::default();

    // Verification pass: the scaled EM must decode the same path as the
    // log-space oracle, and the cached-delta WSAT must do no worse than
    // the reference on solve status (the search trajectories differ —
    // per-try seeding vs. one sequential stream — so assignments may
    // legitimately differ on relaxed pages).
    for f in &fixtures {
        let slow = segment_prob(&f.observations, &prob_base);
        let fast = segment_prob(&f.observations, &prob_opt);
        assert_eq!(
            slow.segmentation.assignments, fast.segmentation.assignments,
            "{} page {}: scaled EM diverged from log-space oracle",
            f.site, f.page
        );
        let slow = segment_csp(&f.observations, &csp_base);
        let fast = segment_csp(&f.observations, &csp_opt);
        assert!(
            !(slow.status == CspStatus::Solved && fast.status != CspStatus::Solved),
            "{} page {}: cached-delta WSAT lost a solution the reference found",
            f.site,
            f.page
        );
    }

    let mut csp = MethodBench {
        baseline_ns: u128::MAX,
        optimized_ns: u128::MAX,
        work_units: 0,
    };
    let mut prob = MethodBench {
        baseline_ns: u128::MAX,
        optimized_ns: u128::MAX,
        work_units: 0,
    };
    for _ in 0..iters {
        let t = Instant::now();
        for f in &fixtures {
            std::hint::black_box(segment_csp(&f.observations, &csp_base));
        }
        csp.baseline_ns = csp.baseline_ns.min(t.elapsed().as_nanos());

        let t = Instant::now();
        let mut flips = 0u64;
        for f in &fixtures {
            flips += std::hint::black_box(segment_csp(&f.observations, &csp_opt)).flips;
        }
        csp.optimized_ns = csp.optimized_ns.min(t.elapsed().as_nanos());
        csp.work_units = flips;

        let t = Instant::now();
        for f in &fixtures {
            std::hint::black_box(segment_prob(&f.observations, &prob_base));
        }
        prob.baseline_ns = prob.baseline_ns.min(t.elapsed().as_nanos());

        let t = Instant::now();
        let mut em_iters = 0u64;
        for f in &fixtures {
            em_iters +=
                std::hint::black_box(segment_prob(&f.observations, &prob_opt)).iterations as u64;
        }
        prob.optimized_ns = prob.optimized_ns.min(t.elapsed().as_nanos());
        prob.work_units = em_iters;
    }

    SolveBench {
        sites,
        pages: fixtures.len(),
        extracts,
        csp,
        prob,
        iters,
    }
}

/// Renders the benchmark (plus per-stage totals of a batch run, if given)
/// as the `BENCH_solver.json` document.
pub fn render_json(bench: &SolveBench, stage_totals: &[(String, u128)]) -> String {
    let mut j = BenchJson::new("solver");
    j.corpus(bench.sites, bench.pages, bench.extracts)
        .field("iters", bench.iters)
        .raw(
            "csp",
            format!(
                "{{ \"baseline_ns\": {}, \"optimized_ns\": {}, \"speedup\": {:.2}, \
                 \"flips\": {}, \"flips_per_sec\": {:.0} }}",
                bench.csp.baseline_ns,
                bench.csp.optimized_ns,
                bench.csp.speedup(),
                bench.csp.work_units,
                bench.csp.units_per_sec()
            ),
        )
        .raw(
            "prob",
            format!(
                "{{ \"baseline_ns\": {}, \"optimized_ns\": {}, \"speedup\": {:.2}, \
                 \"em_iters\": {}, \"em_iters_per_sec\": {:.0} }}",
                bench.prob.baseline_ns,
                bench.prob.optimized_ns,
                bench.prob.speedup(),
                bench.prob.work_units,
                bench.prob.units_per_sec()
            ),
        )
        .raw("solve_speedup", format!("{:.2}", bench.solve_speedup()))
        .stage_totals(stage_totals);
    j.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tableseg_sitegen::paper_sites;

    #[test]
    fn corpus_covers_all_sites() {
        let fixtures = corpus();
        assert_eq!(
            fixtures.len(),
            paper_sites::all().len() * 2,
            "two list pages per site"
        );
        assert!(fixtures.iter().all(|f| !f.observations.items.is_empty()));
    }

    #[test]
    fn json_shape() {
        let bench = SolveBench {
            sites: 12,
            pages: 24,
            extracts: 500,
            csp: MethodBench {
                baseline_ns: 9000,
                optimized_ns: 3000,
                work_units: 60,
            },
            prob: MethodBench {
                baseline_ns: 6000,
                optimized_ns: 2000,
                work_units: 40,
            },
            iters: 2,
        };
        assert!((bench.solve_speedup() - 3.0).abs() < 1e-9);
        let json = render_json(&bench, &[("solve.csp".into(), 42)]);
        assert!(json.contains("\"schema\": \"tableseg.bench/v2\""));
        assert!(json.contains("\"solve_speedup\": 3.00"));
        assert!(json.contains("\"flips\": 60"));
        assert!(json.contains("\"em_iters\": 40"));
        assert!(json.contains("\"solve.csp\": 42"));
        assert!(json.starts_with('{') && json.ends_with("}\n"));
    }
}
