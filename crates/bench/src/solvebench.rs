//! The solver microbenchmark behind `BENCH_solver.json`: three solver
//! generations over the twelve simulated paper sites.
//!
//! * **baseline** — the pre-overhaul algorithms, kept in-tree verbatim:
//!   [`CspOptions::reference_solver`] selects the sequential uncached WSAT
//!   and [`ProbOptions::log_space`] the per-cell log-space EM loop;
//! * **prev** — the previously optimized solvers (cached-delta parallel
//!   WSAT on the whole instance, arena-based scaled EM), selected with
//!   [`CspOptions::reduce`]` = false` and [`ProbOptions::memo_e_step`]
//!   ` = false`;
//! * **optimized** — the production path: instance reduction with
//!   component decomposition and warm-started WSAT, plus the memoized
//!   CSR E-step.
//!
//! `solve_speedup` is optimized-vs-**prev** — the gain of the current
//! round over the already-optimized solvers, not over the ancient
//! baseline. All three paths solve the *same* observation tables, so the
//! comparison isolates the solver layer — front-end preparation is done
//! once, outside every timed region.

use std::time::Instant;

use tableseg_csp::{encode, reduce_model, segment_csp, CspOptions, CspStatus, EncodeOptions};
use tableseg_extract::Observations;
use tableseg_prob::{segment_prob, ProbOptions};

use crate::corpus::{paper_prepared, site_count, BenchJson};
use crate::prepare_page_cached;

/// One list page of the benchmark corpus, prepared for segmentation.
pub struct SolveFixture {
    /// Site name.
    pub site: String,
    /// List-page index within the site.
    pub page: usize,
    /// The page's observation table (the solver input).
    pub observations: Observations,
}

/// Builds the benchmark corpus: every list page of every simulated paper
/// site, front end run once per page (sites prepared via
/// [`crate::corpus::paper_prepared`]).
pub fn corpus() -> Vec<SolveFixture> {
    let mut fixtures = Vec::new();
    for ps in paper_prepared() {
        for page in 0..ps.site.pages.len() {
            let prepared = prepare_page_cached(&ps, page);
            fixtures.push(SolveFixture {
                site: ps.spec.name.clone(),
                page,
                observations: prepared.observations,
            });
        }
    }
    fixtures
}

/// Wall clock for one solver method across its three generations.
#[derive(Debug, Clone, Copy)]
pub struct MethodBench {
    /// Best (minimum) nanoseconds of one baseline corpus pass.
    pub baseline_ns: u128,
    /// Best (minimum) nanoseconds of one previously-optimized corpus pass.
    pub prev_ns: u128,
    /// Best (minimum) nanoseconds of one optimized corpus pass.
    pub optimized_ns: u128,
    /// Method-specific work units performed by one optimized pass
    /// (WSAT flips for the CSP, EM iterations for the probabilistic
    /// approach) — the throughput numerator.
    pub work_units: u64,
}

impl MethodBench {
    /// baseline / optimized wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        self.baseline_ns as f64 / self.optimized_ns.max(1) as f64
    }

    /// prev / optimized wall-clock ratio: the current round's gain.
    pub fn speedup_over_prev(&self) -> f64 {
        self.prev_ns as f64 / self.optimized_ns.max(1) as f64
    }

    /// Work units per second of the optimized pass.
    pub fn units_per_sec(&self) -> f64 {
        self.work_units as f64 / (self.optimized_ns.max(1) as f64 / 1e9)
    }
}

/// Totals from the CSP instance-reduction layer over one corpus pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReductionStats {
    /// Connected components solved independently.
    pub components: u64,
    /// Variables eliminated before search (forced + free).
    pub pruned_vars: u64,
    /// Warm-started solves whose winning try was a warm seed.
    pub warm_start_hits: u64,
    /// Wall clock spent inside the reduction passes.
    pub reduce_ns: u64,
}

/// The corpus-level result of the solver comparison.
#[derive(Debug, Clone, Copy)]
pub struct SolveBench {
    /// Number of sites in the corpus.
    pub sites: usize,
    /// Number of list pages solved per pass.
    pub pages: usize,
    /// Total extracts across the corpus.
    pub extracts: usize,
    /// The CSP approach.
    pub csp: MethodBench,
    /// The probabilistic approach.
    pub prob: MethodBench,
    /// Reduction-layer totals of one optimized CSP pass.
    pub reduction: ReductionStats,
    /// Corpus passes each path ran; the reported time is the fastest
    /// pass, which is robust to interference from other load.
    pub iters: usize,
}

impl SolveBench {
    /// Whole-solve-stage speedup over the **previously optimized**
    /// solvers: summed prev over summed optimized.
    pub fn solve_speedup(&self) -> f64 {
        (self.csp.prev_ns + self.prob.prev_ns) as f64
            / (self.csp.optimized_ns + self.prob.optimized_ns).max(1) as f64
    }

    /// Whole-solve-stage speedup over the pre-overhaul baselines.
    pub fn reference_speedup(&self) -> f64 {
        (self.csp.baseline_ns + self.prob.baseline_ns) as f64
            / (self.csp.optimized_ns + self.prob.optimized_ns).max(1) as f64
    }
}

/// Times all six solver paths over the full corpus, `iters` times each,
/// verifying up front that each optimized path reproduces its
/// predecessor's results on every page:
///
/// * the memoized scaled EM and the unmemoized one must decode the same
///   path as the log-space oracle;
/// * the reduced+decomposed CSP must report the same status as the
///   whole-instance solver, and the same segmentation wherever the
///   instance is exactly solvable (relaxed instances have non-unique
///   optima, so only the status is compared there).
pub fn run_solve_bench(iters: usize) -> SolveBench {
    let fixtures = corpus();
    let sites = site_count(fixtures.iter().map(|f| f.site.as_str()));
    let extracts = fixtures.iter().map(|f| f.observations.len()).sum();

    let csp_base = CspOptions {
        reference_solver: true,
        ..CspOptions::default()
    };
    let csp_prev = CspOptions {
        reduce: false,
        ..CspOptions::default()
    };
    let csp_opt = CspOptions::default();
    let prob_base = ProbOptions {
        log_space: true,
        ..ProbOptions::default()
    };
    let prob_prev = ProbOptions {
        memo_e_step: false,
        ..ProbOptions::default()
    };
    let prob_opt = ProbOptions::default();

    // Verification pass (also collects the reduction stats).
    let mut reduction = ReductionStats::default();
    for f in &fixtures {
        let slow = segment_prob(&f.observations, &prob_base);
        let prev = segment_prob(&f.observations, &prob_prev);
        let fast = segment_prob(&f.observations, &prob_opt);
        assert_eq!(
            slow.segmentation.assignments, prev.segmentation.assignments,
            "{} page {}: scaled EM diverged from log-space oracle",
            f.site, f.page
        );
        assert_eq!(
            prev.segmentation.assignments, fast.segmentation.assignments,
            "{} page {}: memoized E-step diverged from the unmemoized pass",
            f.site, f.page
        );
        let slow = segment_csp(&f.observations, &csp_base);
        let whole = segment_csp(&f.observations, &csp_prev);
        let reduced = segment_csp(&f.observations, &csp_opt);
        assert!(
            !(slow.status == CspStatus::Solved && whole.status != CspStatus::Solved),
            "{} page {}: cached-delta WSAT lost a solution the reference found",
            f.site,
            f.page
        );
        assert_eq!(
            whole.status, reduced.status,
            "{} page {}: reduced solve changed the outcome status",
            f.site, f.page
        );
        if whole.status == CspStatus::Solved {
            assert_eq!(
                whole.segmentation.assignments, reduced.segmentation.assignments,
                "{} page {}: reduced solve diverged from the whole-instance solver",
                f.site, f.page
            );
        }
        reduction.components += reduced.components as u64;
        reduction.pruned_vars += reduced.pruned_vars as u64;
        reduction.warm_start_hits += reduced.warm_start_hits;
        reduction.reduce_ns += reduced.reduce_ns;
    }

    let blank = MethodBench {
        baseline_ns: u128::MAX,
        prev_ns: u128::MAX,
        optimized_ns: u128::MAX,
        work_units: 0,
    };
    let mut csp = blank;
    let mut prob = blank;
    for _ in 0..iters {
        let t = Instant::now();
        for f in &fixtures {
            std::hint::black_box(segment_csp(&f.observations, &csp_base));
        }
        csp.baseline_ns = csp.baseline_ns.min(t.elapsed().as_nanos());

        let t = Instant::now();
        for f in &fixtures {
            std::hint::black_box(segment_csp(&f.observations, &csp_prev));
        }
        csp.prev_ns = csp.prev_ns.min(t.elapsed().as_nanos());

        let t = Instant::now();
        let mut flips = 0u64;
        for f in &fixtures {
            flips += std::hint::black_box(segment_csp(&f.observations, &csp_opt)).flips;
        }
        csp.optimized_ns = csp.optimized_ns.min(t.elapsed().as_nanos());
        csp.work_units = flips;

        let t = Instant::now();
        for f in &fixtures {
            std::hint::black_box(segment_prob(&f.observations, &prob_base));
        }
        prob.baseline_ns = prob.baseline_ns.min(t.elapsed().as_nanos());

        let t = Instant::now();
        for f in &fixtures {
            std::hint::black_box(segment_prob(&f.observations, &prob_prev));
        }
        prob.prev_ns = prob.prev_ns.min(t.elapsed().as_nanos());

        let t = Instant::now();
        let mut em_iters = 0u64;
        for f in &fixtures {
            em_iters +=
                std::hint::black_box(segment_prob(&f.observations, &prob_opt)).iterations as u64;
        }
        prob.optimized_ns = prob.optimized_ns.min(t.elapsed().as_nanos());
        prob.work_units = em_iters;
    }

    SolveBench {
        sites,
        pages: fixtures.len(),
        extracts,
        csp,
        prob,
        reduction,
        iters,
    }
}

/// Per-component size histograms over the corpus: how the reduction
/// splits the strict and relaxed encodings, as `(vars, components)`
/// pairs ascending by size. Written to the manifest under `--profile` so
/// a reduction regression (components merging back into one blob) is
/// diagnosable from artifacts alone.
#[derive(Debug, Clone, Default)]
pub struct ComponentProfile {
    /// Histogram over the strict (equality) encodings.
    pub strict: Vec<(usize, u64)>,
    /// Histogram over the relaxed (maximization) encodings.
    pub relaxed: Vec<(usize, u64)>,
}

/// Runs the reduction alone over every fixture and histograms the
/// component sizes of both encodings.
pub fn component_profile(fixtures: &[SolveFixture]) -> ComponentProfile {
    let mut hist = [
        std::collections::BTreeMap::new(),
        std::collections::BTreeMap::new(),
    ];
    for f in fixtures {
        for (slot, relaxed) in hist.iter_mut().zip([false, true]) {
            let enc = encode(
                &f.observations,
                &EncodeOptions {
                    relaxed,
                    ..EncodeOptions::default()
                },
            );
            let red = reduce_model(&enc.model);
            for comp in &red.components {
                *slot.entry(comp.vars.len()).or_insert(0u64) += 1;
            }
        }
    }
    let flatten = |m: &std::collections::BTreeMap<usize, u64>| {
        m.iter().map(|(&size, &n)| (size, n)).collect()
    };
    ComponentProfile {
        strict: flatten(&hist[0]),
        relaxed: flatten(&hist[1]),
    }
}

fn histogram_json(pairs: &[(usize, u64)]) -> String {
    let cells: Vec<String> = pairs
        .iter()
        .map(|(size, n)| format!("[{size}, {n}]"))
        .collect();
    format!("[{}]", cells.join(", "))
}

/// Renders the benchmark (plus per-stage totals of a batch run and an
/// optional component profile) as the `BENCH_solver.json` document.
pub fn render_json(
    bench: &SolveBench,
    stage_totals: &[(String, u128)],
    profile: Option<&ComponentProfile>,
) -> String {
    let mut j = BenchJson::new("solver");
    j.corpus(bench.sites, bench.pages, bench.extracts)
        .field("iters", bench.iters)
        .raw(
            "csp",
            format!(
                "{{ \"baseline_ns\": {}, \"prev_ns\": {}, \"optimized_ns\": {}, \
                 \"speedup\": {:.2}, \"speedup_over_prev\": {:.2}, \
                 \"flips\": {}, \"flips_per_sec\": {:.0} }}",
                bench.csp.baseline_ns,
                bench.csp.prev_ns,
                bench.csp.optimized_ns,
                bench.csp.speedup(),
                bench.csp.speedup_over_prev(),
                bench.csp.work_units,
                bench.csp.units_per_sec()
            ),
        )
        .raw(
            "prob",
            format!(
                "{{ \"baseline_ns\": {}, \"prev_ns\": {}, \"optimized_ns\": {}, \
                 \"speedup\": {:.2}, \"speedup_over_prev\": {:.2}, \
                 \"em_iters\": {}, \"em_iters_per_sec\": {:.0} }}",
                bench.prob.baseline_ns,
                bench.prob.prev_ns,
                bench.prob.optimized_ns,
                bench.prob.speedup(),
                bench.prob.speedup_over_prev(),
                bench.prob.work_units,
                bench.prob.units_per_sec()
            ),
        )
        .raw(
            "reduction",
            format!(
                "{{ \"components\": {}, \"pruned_vars\": {}, \"warm_start_hits\": {}, \
                 \"reduce_ns\": {} }}",
                bench.reduction.components,
                bench.reduction.pruned_vars,
                bench.reduction.warm_start_hits,
                bench.reduction.reduce_ns
            ),
        )
        .raw("solve_speedup", format!("{:.2}", bench.solve_speedup()))
        .raw(
            "reference_speedup",
            format!("{:.2}", bench.reference_speedup()),
        );
    if let Some(p) = profile {
        j.raw(
            "component_profile",
            format!(
                "{{ \"strict\": {}, \"relaxed\": {} }}",
                histogram_json(&p.strict),
                histogram_json(&p.relaxed)
            ),
        );
    }
    j.stage_totals(stage_totals);
    j.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tableseg_sitegen::paper_sites;

    #[test]
    fn corpus_covers_all_sites() {
        let fixtures = corpus();
        assert_eq!(
            fixtures.len(),
            paper_sites::all().len() * 2,
            "two list pages per site"
        );
        assert!(fixtures.iter().all(|f| !f.observations.items.is_empty()));
    }

    fn bench_fixture() -> SolveBench {
        SolveBench {
            sites: 12,
            pages: 24,
            extracts: 500,
            csp: MethodBench {
                baseline_ns: 9000,
                prev_ns: 6000,
                optimized_ns: 3000,
                work_units: 60,
            },
            prob: MethodBench {
                baseline_ns: 6000,
                prev_ns: 3000,
                optimized_ns: 2000,
                work_units: 40,
            },
            reduction: ReductionStats {
                components: 7,
                pruned_vars: 321,
                warm_start_hits: 5,
                reduce_ns: 1234,
            },
            iters: 2,
        }
    }

    #[test]
    fn speedups_compare_the_right_generations() {
        let bench = bench_fixture();
        // prev / optimized = 9000/5000; baseline / optimized = 15000/5000.
        assert!((bench.solve_speedup() - 1.8).abs() < 1e-9);
        assert!((bench.reference_speedup() - 3.0).abs() < 1e-9);
        assert!((bench.csp.speedup_over_prev() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn json_shape() {
        let bench = bench_fixture();
        let json = render_json(&bench, &[("solve.csp".into(), 42)], None);
        assert!(json.contains("\"schema\": \"tableseg.bench/v2\""));
        assert!(json.contains("\"solve_speedup\": 1.80"));
        assert!(json.contains("\"reference_speedup\": 3.00"));
        assert!(json.contains("\"prev_ns\": 6000"));
        assert!(json.contains("\"flips\": 60"));
        assert!(json.contains("\"em_iters\": 40"));
        assert!(json.contains("\"components\": 7"));
        assert!(json.contains("\"pruned_vars\": 321"));
        assert!(json.contains("\"warm_start_hits\": 5"));
        assert!(json.contains("\"solve.csp\": 42"));
        assert!(!json.contains("component_profile"));
        assert!(json.starts_with('{') && json.ends_with("}\n"));
    }

    #[test]
    fn json_includes_profile_when_given() {
        let bench = bench_fixture();
        let profile = ComponentProfile {
            strict: vec![(3, 2)],
            relaxed: vec![(3, 2), (11, 1)],
        };
        let json = render_json(&bench, &[], Some(&profile));
        assert!(json.contains(
            "\"component_profile\": { \"strict\": [[3, 2]], \"relaxed\": [[3, 2], [11, 1]] }"
        ));
    }

    #[test]
    fn component_profile_histograms_the_corpus() {
        let fixtures = corpus();
        let profile = component_profile(&fixtures);
        // Clean strict instances are fully propagated (no components);
        // relaxed encodings decompose, so the relaxed histogram has mass.
        let relaxed_total: u64 = profile.relaxed.iter().map(|(_, n)| n).sum();
        assert!(relaxed_total > 0, "{profile:?}");
        for (size, n) in profile.strict.iter().chain(&profile.relaxed) {
            assert!(*size >= 1);
            assert!(*n >= 1);
        }
    }
}
