//! The detection/nested benchmark behind `BENCH_detect.json`: region
//! detection precision/recall on multi-table pages with noise regions,
//! and sub-record F on nested-record pages through the full recursive
//! pass.
//!
//! Two scenario cohorts from [`tableseg_sitegen::scenario`]:
//!
//! * **region cohort** ([`detect_cohort`]) — pages carrying 1–3 result
//!   tables plus navigation bars, ad blocks and link footers. Each page
//!   is tokenized and run through [`detect_regions`]; the predicted
//!   table-region byte spans are scored against the ground-truth table
//!   regions with the span classifier (`classify_spans`), giving region
//!   P/R/F. The CI gate requires F ≥ 0.9;
//! * **nested cohort** ([`tableseg_sitegen::scenario::nested_cohort`]) —
//!   pages whose parent records
//!   nest a repeating sub-record table. The pipeline runs end to end on
//!   *predicted* structure: parent-level template induction + CSP
//!   segmentation, [`parent_spans_from_groups`] to turn the parent
//!   segmentation into slots, then [`try_segment_nested`] to recursively
//!   induce and segment inside each slot. Sub-detail pages are attached
//!   to each predicted slot by following the links it covers (modelled as
//!   max byte overlap with the truth parent). Sub-records are scored with
//!   [`classify_nested`]; the CI gate requires F ≥ 0.8.
//!
//! The report also re-checks the **pass-through invariant** on the paper
//! corpus: every page of the twelve single-table paper sites must detect
//! as exactly one whole-page region (`pass_through`), which is what keeps
//! the table4 golden byte-identical with detection enabled.

use std::ops::Range;

use tableseg::html::lexer::tokenize;
use tableseg::{
    detect_regions, parent_spans_from_groups, try_prepare_with_template, try_segment_nested,
    CspSegmenter, DetectOptions, Segmenter, SiteTemplate,
};
use tableseg_eval::classify::{
    classify_nested, classify_spans, NestedParentPred, NestedParentTruth, PageCounts,
};
use tableseg_eval::Metrics;
use tableseg_sitegen::paper_sites;
use tableseg_sitegen::scenario::{
    detect_cohort, generate_multi_table, generate_nested, NestedPage,
};
use tableseg_sitegen::site::generate;

use crate::corpus::BenchJson;

/// Classification counts for one scenario site.
#[derive(Debug, Clone)]
pub struct SiteScore {
    /// Site name.
    pub site: String,
    /// Pages scored.
    pub pages: usize,
    /// Summed counts over the site's pages.
    pub counts: PageCounts,
}

/// The full detection/nested benchmark result.
#[derive(Debug, Clone)]
pub struct DetectBench {
    /// Per-site region-detection scores (multi-table cohort).
    pub region_sites: Vec<SiteScore>,
    /// Per-site sub-record scores (nested cohort).
    pub nested_sites: Vec<SiteScore>,
    /// Pages in the paper corpus checked for pass-through.
    pub paper_pages: usize,
    /// Paper-corpus pages that detected as a single whole-page region.
    pub paper_pass_through: usize,
}

impl DetectBench {
    fn summed(sites: &[SiteScore]) -> PageCounts {
        sites
            .iter()
            .fold(PageCounts::default(), |acc, s| acc.add(&s.counts))
    }

    /// Region-detection counts summed over the multi-table cohort.
    pub fn region_counts(&self) -> PageCounts {
        Self::summed(&self.region_sites)
    }

    /// Sub-record counts summed over the nested cohort.
    pub fn nested_counts(&self) -> PageCounts {
        Self::summed(&self.nested_sites)
    }

    /// Region-detection precision/recall/F.
    pub fn region_metrics(&self) -> Metrics {
        Metrics::from_counts(&self.region_counts())
    }

    /// Sub-record precision/recall/F through the recursive pass.
    pub fn nested_metrics(&self) -> Metrics {
        Metrics::from_counts(&self.nested_counts())
    }

    /// `true` when both accuracy gates and the paper pass-through
    /// invariant hold.
    pub fn gates_pass(&self, min_region_f: f64, min_nested_f: f64) -> bool {
        self.region_metrics().f1 >= min_region_f
            && self.nested_metrics().f1 >= min_nested_f
            && self.paper_pass_through == self.paper_pages
    }
}

/// Scores region detection on one multi-table page.
fn score_region_page(
    list_html: &str,
    truth_spans: &[Range<usize>],
    opts: &DetectOptions,
) -> PageCounts {
    let tokens = tokenize(list_html);
    let detection = detect_regions(&tokens, opts);
    let pred: Vec<Range<usize>> = detection.table_regions().map(|r| r.bytes.clone()).collect();
    classify_spans(&pred, truth_spans)
}

/// Runs the recursive pass on one nested page using predicted parent
/// slots and scores the sub-record segmentation. A failure anywhere in
/// the pipeline (degenerate template, solver failure) scores every true
/// sub-record as unsegmented — a crash is not an excuse for a miss.
fn score_nested_page(
    template: &SiteTemplate,
    page_idx: usize,
    page: &NestedPage,
    segmenter: &dyn Segmenter,
) -> PageCounts {
    let truth: Vec<NestedParentTruth> = page
        .truth
        .parents
        .iter()
        .map(|p| NestedParentTruth {
            span: p.span.start..p.span.end,
            subs: p.subs.iter().map(|s| s.start..s.end).collect(),
        })
        .collect();
    let all_missed = || PageCounts {
        fneg: truth.iter().map(|t| t.subs.len()).sum(),
        ..PageCounts::default()
    };

    // Parent-level pass: segment the list page into parent records.
    let parent_details: Vec<&str> = page.parent_details.iter().map(String::as_str).collect();
    let Ok(prepared) = try_prepare_with_template(template, page_idx, &parent_details) else {
        return all_missed();
    };
    let Ok(outcome) = segmenter.try_segment(&prepared.observations) else {
        return all_missed();
    };
    let spans = parent_spans_from_groups(
        &outcome.segmentation.records(),
        &prepared.extract_offsets,
        page.list_html.len(),
    );
    if spans.is_empty() {
        return all_missed();
    }

    // Attach each predicted slot's sub-detail pages by the links it
    // covers: the truth parent with the largest byte overlap.
    let overlap =
        |a: &Range<usize>, b: &Range<usize>| a.end.min(b.end).saturating_sub(a.start.max(b.start));
    let details: Vec<Vec<&str>> = spans
        .iter()
        .map(|span| {
            truth
                .iter()
                .enumerate()
                .max_by_key(|(_, t)| overlap(span, &t.span))
                .filter(|(_, t)| overlap(span, &t.span) > 0)
                .map(|(i, _)| page.sub_details[i].iter().map(String::as_str).collect())
                .unwrap_or_default()
        })
        .collect();

    // The recursive pass, then sub-record classification.
    let Ok(run) = try_segment_nested(&page.list_html, &spans, &details, segmenter) else {
        return all_missed();
    };
    let pred: Vec<NestedParentPred> = run
        .parents
        .iter()
        .map(|p| NestedParentPred {
            span: p.span.clone(),
            groups: p.groups.clone(),
            extract_offsets: p.extract_offsets.clone(),
        })
        .collect();
    classify_nested(&pred, &truth)
}

/// Runs the full benchmark: the region cohort, the nested cohort (end to
/// end with the CSP sub-solver), and the paper pass-through check. `seed`
/// perturbs the scenario cohorts' data.
pub fn run_detect_bench(seed: u64) -> DetectBench {
    let opts = DetectOptions::default();

    let region_sites = detect_cohort(seed)
        .iter()
        .map(|spec| {
            let site = generate_multi_table(spec);
            let counts = site.pages.iter().fold(PageCounts::default(), |acc, page| {
                acc.add(&score_region_page(
                    &page.list_html,
                    &page.table_region_spans(),
                    &opts,
                ))
            });
            SiteScore {
                site: spec.name.clone(),
                pages: site.pages.len(),
                counts,
            }
        })
        .collect();

    let segmenter = CspSegmenter::default();
    let nested_sites = tableseg_sitegen::scenario::nested_cohort(seed)
        .iter()
        .map(|spec| {
            let site = generate_nested(spec);
            let template = SiteTemplate::build(&site.list_htmls());
            let counts = site
                .pages
                .iter()
                .enumerate()
                .fold(PageCounts::default(), |acc, (i, page)| {
                    acc.add(&score_nested_page(&template, i, page, &segmenter))
                });
            SiteScore {
                site: spec.name.clone(),
                pages: site.pages.len(),
                counts,
            }
        })
        .collect();

    let mut paper_pages = 0;
    let mut paper_pass_through = 0;
    for spec in paper_sites::all() {
        let site = generate(&spec);
        for page in &site.pages {
            paper_pages += 1;
            let detection = detect_regions(&tokenize(&page.list_html), &opts);
            if detection.pass_through {
                paper_pass_through += 1;
            }
        }
    }

    DetectBench {
        region_sites,
        nested_sites,
        paper_pages,
        paper_pass_through,
    }
}

fn counts_json(c: &PageCounts, m: &Metrics) -> String {
    format!(
        "{{ \"cor\": {}, \"incor\": {}, \"fneg\": {}, \"fpos\": {}, \
         \"precision\": {:.4}, \"recall\": {:.4}, \"f\": {:.4} }}",
        c.cor, c.incor, c.fneg, c.fpos, m.precision, m.recall, m.f1
    )
}

fn sites_json(sites: &[SiteScore]) -> String {
    let mut out = String::from("[\n");
    for (i, s) in sites.iter().enumerate() {
        let m = Metrics::from_counts(&s.counts);
        out.push_str(&format!(
            "    {{ \"site\": \"{}\", \"pages\": {}, {} }}{}\n",
            s.site,
            s.pages,
            counts_json(&s.counts, &m)
                .trim_start_matches("{ ")
                .trim_end_matches(" }"),
            if i + 1 < sites.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]");
    out
}

/// Renders the benchmark as the `BENCH_detect.json` document.
pub fn render_json(bench: &DetectBench, min_region_f: f64, min_nested_f: f64) -> String {
    let region_pages: usize = bench.region_sites.iter().map(|s| s.pages).sum();
    let nested_pages: usize = bench.nested_sites.iter().map(|s| s.pages).sum();
    let mut j = BenchJson::new("detect");
    j.raw(
        "corpus",
        format!(
            "{{ \"region_sites\": {}, \"region_pages\": {}, \"nested_sites\": {}, \
             \"nested_pages\": {}, \"paper_pages\": {} }}",
            bench.region_sites.len(),
            region_pages,
            bench.nested_sites.len(),
            nested_pages,
            bench.paper_pages
        ),
    )
    .raw(
        "region",
        counts_json(&bench.region_counts(), &bench.region_metrics()),
    )
    .raw(
        "nested",
        counts_json(&bench.nested_counts(), &bench.nested_metrics()),
    )
    .raw(
        "pass_through",
        format!(
            "{{ \"paper_pages\": {}, \"pass_through_pages\": {} }}",
            bench.paper_pages, bench.paper_pass_through
        ),
    )
    .raw(
        "gates",
        format!(
            "{{ \"min_region_f\": {min_region_f:.2}, \"min_nested_f\": {min_nested_f:.2}, \
             \"pass\": {} }}",
            bench.gates_pass(min_region_f, min_nested_f)
        ),
    )
    .raw("region_sites", sites_json(&bench.region_sites))
    .raw("nested_sites", sites_json(&bench.nested_sites));
    j.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_meets_its_own_gates() {
        let bench = run_detect_bench(0);
        assert_eq!(
            bench.paper_pass_through, bench.paper_pages,
            "paper corpus must be single-region everywhere"
        );
        let region = bench.region_metrics();
        assert!(region.f1 >= 0.9, "region F {region}");
        let nested = bench.nested_metrics();
        assert!(nested.f1 >= 0.8, "nested F {nested}");
    }

    #[test]
    fn json_shape() {
        let bench = DetectBench {
            region_sites: vec![SiteScore {
                site: "A".into(),
                pages: 2,
                counts: PageCounts {
                    cor: 4,
                    incor: 0,
                    fneg: 0,
                    fpos: 0,
                },
            }],
            nested_sites: vec![SiteScore {
                site: "B".into(),
                pages: 2,
                counts: PageCounts {
                    cor: 8,
                    incor: 1,
                    fneg: 1,
                    fpos: 0,
                },
            }],
            paper_pages: 24,
            paper_pass_through: 24,
        };
        let json = render_json(&bench, 0.9, 0.8);
        assert!(json.contains("\"schema\": \"tableseg.bench/v2\""));
        assert!(json.contains("\"bench\": \"detect\""));
        assert!(json.contains("\"region\": { \"cor\": 4"));
        assert!(json.contains("\"pass\": true"));
        assert!(json.contains("\"site\": \"A\""));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn gates_catch_bad_scores() {
        let bench = DetectBench {
            region_sites: vec![SiteScore {
                site: "A".into(),
                pages: 1,
                counts: PageCounts {
                    cor: 1,
                    incor: 3,
                    fneg: 0,
                    fpos: 0,
                },
            }],
            nested_sites: vec![],
            paper_pages: 24,
            paper_pass_through: 24,
        };
        assert!(!bench.gates_pass(0.9, 0.8));
    }
}
