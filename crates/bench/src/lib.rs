//! The shared experiment harness: runs the full pipeline (template →
//! extraction → both segmenters → evaluation) over simulated sites and
//! produces Table-4-style rows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

use tableseg::{prepare, PreparedPage, Segmenter, SitePages};
use tableseg_eval::classify::{classify, truth_of_extracts, PageCounts};
use tableseg_sitegen::site::{generate, GeneratedSite, SiteSpec};

/// The outcome of running both approaches on one list page.
#[derive(Debug, Clone)]
pub struct PageRun {
    /// Site name.
    pub site: String,
    /// List-page index within the site (0 or 1).
    pub page: usize,
    /// Probabilistic-approach counts.
    pub prob: PageCounts,
    /// CSP-approach counts.
    pub csp: PageCounts,
    /// `true` when the page template was unusable and the whole page was
    /// used (the paper's notes `a`, `b`).
    pub used_whole_page: bool,
    /// `true` when the CSP had to relax its constraints (notes `c`, `d`).
    pub csp_relaxed: bool,
}

impl PageRun {
    /// The paper's note string for this page: `a` page-template problem,
    /// `b` entire page used, `c` no solution found, `d` relax constraints.
    pub fn notes(&self) -> String {
        let mut n = Vec::new();
        if self.used_whole_page {
            n.push("a");
            n.push("b");
        }
        if self.csp_relaxed {
            n.push("c");
            n.push("d");
        }
        n.join(", ")
    }
}

/// Prepares one page of a generated site for segmentation.
pub fn prepare_page(site: &GeneratedSite, page: usize) -> PreparedPage {
    let list_htmls = site.list_htmls();
    let details: Vec<&str> = site.pages[page]
        .detail_html
        .iter()
        .map(String::as_str)
        .collect();
    prepare(&SitePages {
        list_pages: list_htmls,
        target: page,
        detail_pages: details,
    })
}

/// Ground-truth record index per kept extract of a prepared page.
pub fn page_truth(site: &GeneratedSite, page: usize, prepared: &PreparedPage) -> Vec<Option<usize>> {
    let spans: Vec<Range<usize>> = site.pages[page]
        .truth
        .records
        .iter()
        .map(|r| r.start..r.end)
        .collect();
    truth_of_extracts(&prepared.extract_offsets, &spans)
}

/// Runs one segmenter on one page and classifies the result.
pub fn evaluate_segmenter(
    site: &GeneratedSite,
    page: usize,
    prepared: &PreparedPage,
    segmenter: &dyn Segmenter,
) -> (PageCounts, bool) {
    let truth = page_truth(site, page, prepared);
    let outcome = segmenter.segment(&prepared.observations);
    let groups = outcome.segmentation.records();
    let counts = classify(&groups, &truth, site.pages[page].truth.len());
    (counts, outcome.relaxed)
}

/// Runs both approaches over every list page of a site.
pub fn run_site(spec: &SiteSpec) -> Vec<PageRun> {
    run_site_with(
        spec,
        &tableseg::ProbSegmenter::default(),
        &tableseg::CspSegmenter::default(),
    )
}

/// Runs two arbitrary segmenters (labelled "prob" and "csp" in the output)
/// over every list page of a site — the ablation binaries use this with
/// variant configurations.
pub fn run_site_with(
    spec: &SiteSpec,
    prob: &dyn Segmenter,
    csp: &dyn Segmenter,
) -> Vec<PageRun> {
    let site = generate(spec);
    (0..site.pages.len())
        .map(|page| {
            let prepared = prepare_page(&site, page);
            let (prob_counts, _) = evaluate_segmenter(&site, page, &prepared, prob);
            let (csp_counts, csp_relaxed) = evaluate_segmenter(&site, page, &prepared, csp);
            PageRun {
                site: spec.name.clone(),
                page,
                prob: prob_counts,
                csp: csp_counts,
                used_whole_page: prepared.used_whole_page,
                csp_relaxed,
            }
        })
        .collect()
}

/// Runs both approaches over many sites in parallel (one thread per
/// site). Results come back in input order, so reports are deterministic
/// regardless of scheduling.
pub fn run_sites_parallel(specs: &[SiteSpec]) -> Vec<PageRun> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = specs
            .iter()
            .map(|spec| scope.spawn(move || run_site(spec)))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("site run panicked"))
            .collect()
    })
}

/// Converts page runs into report rows.
pub fn to_rows(runs: &[PageRun]) -> Vec<tableseg_eval::report::Row> {
    runs.iter()
        .map(|r| tableseg_eval::report::Row {
            site: r.site.clone(),
            prob: r.prob,
            csp: r.csp,
            notes: r.notes(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tableseg_sitegen::paper_sites;

    #[test]
    fn clean_site_runs_end_to_end() {
        let runs = run_site(&paper_sites::butler());
        assert_eq!(runs.len(), 2);
        for r in &runs {
            let total = r.csp.total_records();
            assert!(total > 0, "{r:?}");
            // A clean government site should be segmented essentially
            // perfectly by the CSP.
            assert!(r.csp.cor * 10 >= total * 9, "{r:?}");
            assert!(!r.csp_relaxed, "{r:?}");
        }
    }

    #[test]
    fn notes_format() {
        let run = PageRun {
            site: "X".into(),
            page: 0,
            prob: PageCounts::default(),
            csp: PageCounts::default(),
            used_whole_page: true,
            csp_relaxed: true,
        };
        assert_eq!(run.notes(), "a, b, c, d");
    }
}
