//! The shared experiment harness: runs the full pipeline (template →
//! extraction → both segmenters → evaluation) over simulated sites and
//! produces Table-4-style rows.
//!
//! Batch runs go through [`tableseg::batch`], the work-stealing engine:
//! site preparation (generation + tokenization + template induction),
//! per-page front-end preparation, and `(site, page, segmenter)`
//! evaluation jobs each fan out across worker threads, with results
//! collected in job order so every report is byte-identical regardless of
//! thread count. Template induction runs **once per site** — pages share
//! the [`SiteTemplate`] built in the site-preparation phase — and every
//! stage's wall-clock time lands in a [`timing::Registry`] keyed by site
//! (the RT report).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod detectbench;
pub mod inducebench;
pub mod matchbench;
pub mod scalebench;
pub mod servebench;
pub mod solvebench;

use std::ops::Range;

use tableseg::obs::{Counter, Manifest, Recorder, SpanKind, SpanNode};
use tableseg::outcome::PageOutcome;
use tableseg::robustness::RobustnessReport;
use tableseg::timing::{self, Stage, StageTimes};
use tableseg::{
    batch, prepare_outcome, prepare_with_template, try_prepare_detected, CspSegmenter,
    DetectOptions, DetectedPage, PreparedPage, ProbSegmenter, SegError, Segmenter, SitePages,
    SiteTemplate,
};
use tableseg_eval::classify::{classify, truth_of_extracts, PageCounts};
use tableseg_eval::report::{render_aggregate, render_table4};
use tableseg_sitegen::chaos::{apply_chaos, ChaosConfig, ChaosLog, FaultKind};
use tableseg_sitegen::site::{generate, GeneratedSite, SiteSpec};

/// The outcome of running both approaches on one list page.
#[derive(Debug, Clone)]
pub struct PageRun {
    /// Site name.
    pub site: String,
    /// List-page index within the site (0 or 1).
    pub page: usize,
    /// Probabilistic-approach counts.
    pub prob: PageCounts,
    /// CSP-approach counts.
    pub csp: PageCounts,
    /// `true` when the page template was unusable and the whole page was
    /// used (the paper's notes `a`, `b`).
    pub used_whole_page: bool,
    /// `true` when the CSP had to relax its constraints (notes `c`, `d`).
    pub csp_relaxed: bool,
}

impl PageRun {
    /// The paper's note string for this page: `a` page-template problem,
    /// `b` entire page used, `c` no solution found, `d` relax constraints.
    pub fn notes(&self) -> String {
        let mut n = Vec::new();
        if self.used_whole_page {
            n.push("a");
            n.push("b");
        }
        if self.csp_relaxed {
            n.push("c");
            n.push("d");
        }
        n.join(", ")
    }
}

/// A generated site with its per-site front-end state (the cached
/// template): the unit of the batch engine's site-preparation phase.
#[derive(Debug)]
pub struct PreparedSite {
    /// The site specification.
    pub spec: SiteSpec,
    /// The generated pages and ground truth.
    pub site: GeneratedSite,
    /// Tokenized list pages + induced template, built exactly once.
    pub template: SiteTemplate,
}

/// Generates a site and builds its [`SiteTemplate`] (tokenization +
/// template induction — the once-per-site work).
pub fn prepare_site(spec: &SiteSpec) -> PreparedSite {
    let site = generate(spec);
    let list_htmls = site.list_htmls();
    let template = SiteTemplate::build(&list_htmls);
    PreparedSite {
        spec: spec.clone(),
        site,
        template,
    }
}

/// Prepares one page of a prepared site, reusing the cached template.
pub fn prepare_page_cached(ps: &PreparedSite, page: usize) -> PreparedPage {
    let details: Vec<&str> = ps.site.pages[page]
        .detail_html
        .iter()
        .map(String::as_str)
        .collect();
    let mut prepared = prepare_with_template(&ps.template, page, &details);
    // This page was served by the cached site template instead of a
    // fresh induction — the cache-hit counter of the obs layer.
    prepared.metrics.incr(Counter::TemplateCacheHits);
    prepared
}

/// Prepares one page of a generated site for segmentation (one-shot:
/// re-induces the template; batch callers use [`prepare_site`] +
/// [`prepare_page_cached`] instead).
pub fn prepare_page(site: &GeneratedSite, page: usize) -> PreparedPage {
    let list_htmls = site.list_htmls();
    let details: Vec<&str> = site.pages[page]
        .detail_html
        .iter()
        .map(String::as_str)
        .collect();
    tableseg::prepare(&SitePages {
        list_pages: list_htmls,
        target: page,
        detail_pages: details,
    })
}

/// Ground-truth record index per kept extract of a prepared page.
pub fn page_truth(
    site: &GeneratedSite,
    page: usize,
    prepared: &PreparedPage,
) -> Vec<Option<usize>> {
    let spans: Vec<Range<usize>> = site.pages[page]
        .truth
        .records
        .iter()
        .map(|r| r.start..r.end)
        .collect();
    truth_of_extracts(&prepared.extract_offsets, &spans)
}

/// Runs one segmenter on one page and classifies the result.
pub fn evaluate_segmenter(
    site: &GeneratedSite,
    page: usize,
    prepared: &PreparedPage,
    segmenter: &dyn Segmenter,
) -> (PageCounts, bool) {
    let (counts, relaxed, _, _) = evaluate_segmenter_timed(site, page, prepared, segmenter);
    (counts, relaxed)
}

/// Like [`evaluate_segmenter`], also returning the wall-clock time of the
/// solve (segmentation) and decode (truth alignment + classification)
/// stages plus the solver's observability metrics.
pub fn evaluate_segmenter_timed(
    site: &GeneratedSite,
    page: usize,
    prepared: &PreparedPage,
    segmenter: &dyn Segmenter,
) -> (PageCounts, bool, StageTimes, Recorder) {
    let mut times = StageTimes::new();
    let outcome = times.time(Stage::Solve, || segmenter.segment(&prepared.observations));
    times.merge(&outcome.solver_times);
    let counts = times.time(Stage::Decode, || {
        let truth = page_truth(site, page, prepared);
        let groups = outcome.segmentation.records();
        classify(&groups, &truth, site.pages[page].truth.len())
    });
    (counts, outcome.relaxed, times, outcome.metrics)
}

/// The result of a batch run: page runs in `(site, page)` order plus the
/// per-site per-stage timing registry (the RT report input).
#[derive(Debug)]
pub struct BatchOutcome {
    /// One entry per `(site, page)`, in input order.
    pub runs: Vec<PageRun>,
    /// Per-site wall-clock time per pipeline stage.
    pub timing: timing::Registry,
    /// Merged observability metrics (empty unless
    /// [`tableseg::obs::set_enabled`] is on), merged in `(site, page,
    /// segmenter)` order so totals are thread-count-invariant.
    pub metrics: Recorder,
    /// The `run > site > page > stage > substage` span tree, assembled
    /// in corpus order from the same [`StageTimes`] the registry holds.
    pub spans: SpanNode,
}

impl BatchOutcome {
    /// Bundles the run into a manifest for `tool`. The caller adds its
    /// config pairs and seeds before writing.
    pub fn manifest(&self, tool: &str, threads: usize) -> Manifest {
        let mut m = Manifest::new(tool);
        m.metrics = self.metrics.clone();
        m.root = self.spans.clone();
        m.root.name = tool.to_string();
        m.volatile.threads = threads;
        m
    }
}

/// Runs the default probabilistic and CSP segmenters over every list page
/// of every site on `threads` worker threads.
pub fn run_sites(specs: &[SiteSpec], threads: usize) -> BatchOutcome {
    run_sites_with(
        specs,
        threads,
        &ProbSegmenter::default(),
        &CspSegmenter::default(),
    )
}

/// Runs two arbitrary segmenters (labelled "prob" and "csp" in the output)
/// over every list page of every site, through the batch engine.
///
/// Three phases, each a fan-out over [`batch::execute`] with results in
/// job order:
///
/// 1. **site jobs** — generate the site, tokenize its list pages, induce
///    the template (once per site);
/// 2. **page jobs** — per-page front end against the cached template;
/// 3. **`(site, page, segmenter)` jobs** — solve and decode.
pub fn run_sites_with(
    specs: &[SiteSpec],
    threads: usize,
    prob: &dyn Segmenter,
    csp: &dyn Segmenter,
) -> BatchOutcome {
    // Phase 1: per-site preparation.
    let sites: Vec<PreparedSite> =
        batch::execute(threads, specs.to_vec(), |_, spec| prepare_site(&spec));

    // Phase 2: per-page front end. Jobs are (site, page); `offsets[si]`
    // locates a site's pages in the flat result vector.
    let mut page_jobs: Vec<(usize, usize)> = Vec::new();
    let mut offsets: Vec<usize> = Vec::with_capacity(sites.len());
    for (si, ps) in sites.iter().enumerate() {
        offsets.push(page_jobs.len());
        for page in 0..ps.site.pages.len() {
            page_jobs.push((si, page));
        }
    }
    let prepared: Vec<PreparedPage> =
        batch::execute(threads, page_jobs.clone(), |_, (si, page)| {
            prepare_page_cached(&sites[si], page)
        });

    // Phase 3: (site, page, segmenter) evaluation jobs.
    let segmenters: [&dyn Segmenter; 2] = [prob, csp];
    let eval_jobs: Vec<(usize, usize)> = (0..page_jobs.len())
        .flat_map(|pj| [(pj, 0), (pj, 1)])
        .collect();
    let evaluated: Vec<(PageCounts, bool, StageTimes, Recorder)> =
        batch::execute(threads, eval_jobs, |_, (pj, seg)| {
            let (si, page) = page_jobs[pj];
            evaluate_segmenter_timed(&sites[si].site, page, &prepared[pj], segmenters[seg])
        });

    // Assemble runs, the timing registry, the merged metrics and the
    // span tree in deterministic site order — per-job data merged here,
    // in job order, is what keeps every output thread-count-invariant.
    let registry = timing::Registry::new();
    let mut metrics = Recorder::new();
    let mut root = SpanNode::new(SpanKind::Run, "run", 0);
    let mut runs = Vec::with_capacity(page_jobs.len());
    for (si, ps) in sites.iter().enumerate() {
        let mut site_times = ps.template.timings;
        metrics.merge(&ps.template.metrics);
        let mut site_span = SpanNode::new(
            SpanKind::Site,
            ps.spec.name.clone(),
            ps.template.timings.total().as_nanos(),
        );
        for span in timing::stage_spans(&ps.template.timings) {
            site_span.push(span);
        }
        for page in 0..ps.site.pages.len() {
            let pj = offsets[si] + page;
            site_times.merge(&prepared[pj].timings);
            metrics.merge(&prepared[pj].metrics);
            let (prob_counts, _, prob_times, prob_metrics) = &evaluated[2 * pj];
            let (csp_counts, csp_relaxed, csp_times, csp_metrics) = &evaluated[2 * pj + 1];
            site_times.merge(prob_times);
            site_times.merge(csp_times);
            metrics.merge(prob_metrics);
            metrics.merge(csp_metrics);
            let mut page_times = prepared[pj].timings;
            page_times.merge(prob_times);
            page_times.merge(csp_times);
            let mut page_span = SpanNode::new(
                SpanKind::Page,
                format!("page#{page}"),
                page_times.total().as_nanos(),
            );
            for span in timing::stage_spans(&page_times) {
                page_span.push(span);
            }
            site_span.nanos += page_span.nanos;
            site_span.push(page_span);
            runs.push(PageRun {
                site: ps.spec.name.clone(),
                page,
                prob: *prob_counts,
                csp: *csp_counts,
                used_whole_page: prepared[pj].used_whole_page,
                csp_relaxed: *csp_relaxed,
            });
        }
        registry.record(&ps.spec.name, &site_times);
        root.nanos += site_span.nanos;
        root.push(site_span);
    }
    BatchOutcome {
        runs,
        timing: registry,
        metrics,
        spans: root,
    }
}

/// Runs the detect-enabled front end on one page of a prepared site:
/// region detection, then the region-scoped front end per table region.
/// On single-table pages this passes through to the classic whole-page
/// preparation (see [`try_prepare_detected`]).
///
/// # Panics
///
/// Panics if the front end fails — the detect harness runs on clean
/// generated corpora, where a failure is a bug, not an input problem.
pub fn prepare_page_detected(ps: &PreparedSite, page: usize, opts: &DetectOptions) -> DetectedPage {
    let details: Vec<&str> = ps.site.pages[page]
        .detail_html
        .iter()
        .map(String::as_str)
        .collect();
    try_prepare_detected(&ps.template, page, &details, opts)
        .unwrap_or_else(|e| panic!("{} page {page}: detect front end failed: {e}", ps.spec.name))
}

/// Runs one segmenter over every detected table region of a page, merges
/// the per-region segmentations (group indices rebased onto the
/// concatenated extract list), and classifies the merged result against
/// the page's full ground truth.
///
/// On a pass-through page the single region *is* the classic whole-page
/// preparation, so the counts equal [`evaluate_segmenter_timed`]'s — this
/// is what lets the table4 golden run with detection enabled.
pub fn evaluate_detected_timed(
    site: &GeneratedSite,
    page: usize,
    detected: &DetectedPage,
    segmenter: &dyn Segmenter,
) -> (PageCounts, bool, StageTimes, Recorder) {
    let mut times = StageTimes::new();
    let mut metrics = Recorder::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut extract_offsets: Vec<usize> = Vec::new();
    let mut relaxed = false;
    for rp in &detected.regions {
        let outcome = times.time(Stage::Solve, || {
            segmenter.segment(&rp.prepared.observations)
        });
        times.merge(&outcome.solver_times);
        metrics.merge(&outcome.metrics);
        let base = extract_offsets.len();
        for group in outcome.segmentation.records() {
            groups.push(group.iter().map(|&i| i + base).collect());
        }
        extract_offsets.extend_from_slice(&rp.prepared.extract_offsets);
        relaxed |= outcome.relaxed;
    }
    let counts = times.time(Stage::Decode, || {
        let spans: Vec<Range<usize>> = site.pages[page]
            .truth
            .records
            .iter()
            .map(|r| r.start..r.end)
            .collect();
        let truth = truth_of_extracts(&extract_offsets, &spans);
        classify(&groups, &truth, site.pages[page].truth.len())
    });
    (counts, relaxed, times, metrics)
}

/// [`run_sites_with`], but the per-page front end goes through the
/// region-detection stage: each detected table region is prepared and
/// segmented independently and the per-region results are merged before
/// classification. Single-table pages pass through untouched, so on the
/// paper corpus this produces byte-identical reports to [`run_sites`] —
/// the invariance the detect golden test enforces at every thread count.
pub fn run_sites_detect(
    specs: &[SiteSpec],
    threads: usize,
    prob: &dyn Segmenter,
    csp: &dyn Segmenter,
    opts: &DetectOptions,
) -> BatchOutcome {
    // Phase 1: per-site preparation (unchanged).
    let sites: Vec<PreparedSite> =
        batch::execute(threads, specs.to_vec(), |_, spec| prepare_site(&spec));

    // Phase 2: the detect-enabled per-page front end.
    let mut page_jobs: Vec<(usize, usize)> = Vec::new();
    let mut offsets: Vec<usize> = Vec::with_capacity(sites.len());
    for (si, ps) in sites.iter().enumerate() {
        offsets.push(page_jobs.len());
        for page in 0..ps.site.pages.len() {
            page_jobs.push((si, page));
        }
    }
    let detected: Vec<DetectedPage> =
        batch::execute(threads, page_jobs.clone(), |_, (si, page)| {
            prepare_page_detected(&sites[si], page, opts)
        });

    // Phase 3: (site, page, segmenter) evaluation over merged regions.
    let segmenters: [&dyn Segmenter; 2] = [prob, csp];
    let eval_jobs: Vec<(usize, usize)> = (0..page_jobs.len())
        .flat_map(|pj| [(pj, 0), (pj, 1)])
        .collect();
    let evaluated: Vec<(PageCounts, bool, StageTimes, Recorder)> =
        batch::execute(threads, eval_jobs, |_, (pj, seg)| {
            let (si, page) = page_jobs[pj];
            evaluate_detected_timed(&sites[si].site, page, &detected[pj], segmenters[seg])
        });

    // Assembly mirrors run_sites_with, with the page front-end times now
    // the detection stage plus every region's preparation.
    let registry = timing::Registry::new();
    let mut metrics = Recorder::new();
    let mut root = SpanNode::new(SpanKind::Run, "run", 0);
    let mut runs = Vec::with_capacity(page_jobs.len());
    for (si, ps) in sites.iter().enumerate() {
        let mut site_times = ps.template.timings;
        metrics.merge(&ps.template.metrics);
        let mut site_span = SpanNode::new(
            SpanKind::Site,
            ps.spec.name.clone(),
            ps.template.timings.total().as_nanos(),
        );
        for span in timing::stage_spans(&ps.template.timings) {
            site_span.push(span);
        }
        for page in 0..ps.site.pages.len() {
            let pj = offsets[si] + page;
            let dp = &detected[pj];
            let mut page_times = dp.timings;
            metrics.merge(&dp.metrics);
            let mut used_whole_page = false;
            for rp in &dp.regions {
                page_times.merge(&rp.prepared.timings);
                metrics.merge(&rp.prepared.metrics);
                used_whole_page |= rp.prepared.used_whole_page;
            }
            let (prob_counts, _, prob_times, prob_metrics) = &evaluated[2 * pj];
            let (csp_counts, csp_relaxed, csp_times, csp_metrics) = &evaluated[2 * pj + 1];
            page_times.merge(prob_times);
            page_times.merge(csp_times);
            metrics.merge(prob_metrics);
            metrics.merge(csp_metrics);
            site_times.merge(&page_times);
            let mut page_span = SpanNode::new(
                SpanKind::Page,
                format!("page#{page}"),
                page_times.total().as_nanos(),
            );
            for span in timing::stage_spans(&page_times) {
                page_span.push(span);
            }
            site_span.nanos += page_span.nanos;
            site_span.push(page_span);
            runs.push(PageRun {
                site: ps.spec.name.clone(),
                page,
                prob: *prob_counts,
                csp: *csp_counts,
                used_whole_page,
                csp_relaxed: *csp_relaxed,
            });
        }
        registry.record(&ps.spec.name, &site_times);
        root.nanos += site_span.nanos;
        root.push(site_span);
    }
    BatchOutcome {
        runs,
        timing: registry,
        metrics,
        spans: root,
    }
}

/// One site of a fault-injected batch run: the damaged site, the chaos
/// log, and the (possibly failed) site-level front end.
#[derive(Debug)]
pub struct RobustSite {
    /// The site specification.
    pub spec: SiteSpec,
    /// The generated site *after* fault injection.
    pub site: GeneratedSite,
    /// Every fault that fired on this site.
    pub log: ChaosLog,
    /// The cached template, or why the site-level front end failed.
    pub template: Result<SiteTemplate, SegError>,
}

/// The result of a fault-injected batch run.
#[derive(Debug)]
pub struct RobustBatchOutcome {
    /// One entry per page that was fully processed (front end + both
    /// segmenters), in `(site, page)` order. Failed pages have no run —
    /// accuracy is measured over the pages that produced output.
    pub runs: Vec<PageRun>,
    /// Per-page outcome accounting over *all* pages, including failed
    /// ones.
    pub report: RobustnessReport,
    /// Injected-fault counts by kind, aggregated over every site, in
    /// [`FaultKind::ALL`] order.
    pub fault_counts: Vec<(FaultKind, usize)>,
    /// Per-site wall-clock time per pipeline stage.
    pub timing: timing::Registry,
    /// Merged observability metrics, including the chaos and outcome
    /// counters (empty unless [`tableseg::obs::set_enabled`] is on).
    pub metrics: Recorder,
    /// The span tree (failed pages appear with zero stage times, so the
    /// tree shape depends only on corpus and chaos config).
    pub spans: SpanNode,
}

impl RobustBatchOutcome {
    /// Bundles the run into a manifest for `tool`, including the
    /// robustness rollup. The caller adds config pairs and seeds.
    pub fn manifest(&self, tool: &str, threads: usize) -> Manifest {
        let mut m = Manifest::new(tool);
        m.metrics = self.metrics.clone();
        m.robustness = Some(self.report.rollup());
        m.root = self.spans.clone();
        m.root.name = tool.to_string();
        m.volatile.threads = threads;
        m
    }

    /// Summed counts over all completed runs: `(prob, csp)`.
    pub fn totals(&self) -> (PageCounts, PageCounts) {
        let mut prob = PageCounts::default();
        let mut csp = PageCounts::default();
        for r in &self.runs {
            prob = prob.add(&r.prob);
            csp = csp.add(&r.csp);
        }
        (prob, csp)
    }
}

/// Runs both default segmenters over every list page of every site with
/// faults injected under `cfg` — and **never aborts**: a damaged page
/// (or a whole damaged site) becomes a failed or degraded entry in the
/// returned [`RobustnessReport`] while every other page proceeds.
///
/// Accuracy is measured against the ground truth of the *damaged* pages
/// (the chaos layer remaps record spans through every byte edit). With a
/// no-op config this is [`run_sites`] plus outcome accounting: same jobs,
/// same results, a clean report.
///
/// # Example
///
/// ```
/// use tableseg_bench::run_sites_robust;
/// use tableseg_sitegen::chaos::ChaosConfig;
/// use tableseg_sitegen::paper_sites;
///
/// let specs = &paper_sites::all()[..2];
/// let outcome = run_sites_robust(specs, &ChaosConfig::uniform(0.0, 7), 2);
/// assert_eq!(outcome.report.failed, 0, "clean input may not fail");
/// assert_eq!(outcome.report.pages, outcome.runs.len());
/// ```
pub fn run_sites_robust(
    specs: &[SiteSpec],
    cfg: &ChaosConfig,
    threads: usize,
) -> RobustBatchOutcome {
    // Phase 1: generate, damage, and prepare each site.
    let sites: Vec<RobustSite> = batch::execute(threads, specs.to_vec(), |_, spec| {
        let (site, log) = apply_chaos(&generate(&spec), cfg);
        let list_htmls = site.list_htmls();
        let template = SiteTemplate::try_build(&list_htmls);
        RobustSite {
            spec,
            site,
            log,
            template,
        }
    });

    // Phase 2: per-page front end, as outcomes. A site whose template
    // failed fails all of its pages with the same error.
    let mut page_jobs: Vec<(usize, usize)> = Vec::new();
    let mut offsets: Vec<usize> = Vec::with_capacity(sites.len());
    for (si, rs) in sites.iter().enumerate() {
        offsets.push(page_jobs.len());
        for page in 0..rs.site.pages.len() {
            page_jobs.push((si, page));
        }
    }
    let outcomes: Vec<PageOutcome> = batch::execute(threads, page_jobs.clone(), |_, (si, page)| {
        let rs = &sites[si];
        match &rs.template {
            Ok(template) => {
                let details: Vec<&str> = rs.site.pages[page]
                    .detail_html
                    .iter()
                    .map(String::as_str)
                    .collect();
                prepare_outcome(template, page, &details)
            }
            Err(error) => PageOutcome::Failed {
                error: error.clone(),
            },
        }
    });

    // Phase 3: (page, segmenter) evaluation through the fallible path.
    // Failed pages yield `None`; a solver failure is an `Err` that fails
    // just that page.
    type EvalResult = Option<(Result<(PageCounts, bool), SegError>, StageTimes, Recorder)>;
    let prob = ProbSegmenter::default();
    let csp = CspSegmenter::default();
    let segmenters: [&dyn Segmenter; 2] = [&prob, &csp];
    let eval_jobs: Vec<(usize, usize)> = (0..page_jobs.len())
        .flat_map(|pj| [(pj, 0), (pj, 1)])
        .collect();
    let evaluated: Vec<EvalResult> = batch::execute(threads, eval_jobs, |_, (pj, seg)| {
        let prepared = outcomes[pj].page()?;
        let (si, page) = page_jobs[pj];
        let mut times = StageTimes::new();
        let solved = times.time(Stage::Solve, || {
            segmenters[seg].try_segment(&prepared.observations)
        });
        let mut solve_metrics = Recorder::default();
        let result = solved.map(|outcome| {
            times.merge(&outcome.solver_times);
            solve_metrics.merge(&outcome.metrics);
            times.time(Stage::Decode, || {
                let truth = page_truth(&sites[si].site, page, prepared);
                let groups = outcome.segmentation.records();
                let counts = classify(&groups, &truth, sites[si].site.pages[page].truth.len());
                (counts, outcome.relaxed)
            })
        });
        Some((result, times, solve_metrics))
    });

    // Assemble: runs for fully processed pages, report rows for all,
    // metrics and spans in deterministic site order.
    let registry = timing::Registry::new();
    let mut report = RobustnessReport::new();
    let mut metrics = Recorder::new();
    let mut root = SpanNode::new(SpanKind::Run, "run", 0);
    let mut runs = Vec::new();
    let mut fault_counts: Vec<(FaultKind, usize)> =
        FaultKind::ALL.iter().map(|&k| (k, 0)).collect();
    for (si, rs) in sites.iter().enumerate() {
        for (slot, &(_, n)) in fault_counts.iter_mut().zip(&rs.log.counts()) {
            slot.1 += n;
            metrics.bump(Counter::ChaosFaults, n as u64);
        }
        let mut site_times = match &rs.template {
            Ok(t) => {
                metrics.merge(&t.metrics);
                t.timings
            }
            Err(_) => StageTimes::new(),
        };
        let mut site_span = SpanNode::new(
            SpanKind::Site,
            rs.spec.name.clone(),
            site_times.total().as_nanos(),
        );
        for span in timing::stage_spans(&site_times) {
            site_span.push(span);
        }
        for page in 0..rs.site.pages.len() {
            let pj = offsets[si] + page;
            let outcome = &outcomes[pj];
            let mut page_times = StageTimes::new();
            let processed = 'page: {
                let Some(prepared) = outcome.page() else {
                    report.record(outcome);
                    break 'page false;
                };
                site_times.merge(&prepared.timings);
                metrics.merge(&prepared.metrics);
                let (prob_result, prob_times, prob_metrics) = evaluated[2 * pj]
                    .as_ref()
                    .unwrap_or_else(|| unreachable!("prepared page {pj} has an eval result"));
                let (csp_result, csp_times, csp_metrics) = evaluated[2 * pj + 1]
                    .as_ref()
                    .unwrap_or_else(|| unreachable!("prepared page {pj} has an eval result"));
                site_times.merge(prob_times);
                site_times.merge(csp_times);
                metrics.merge(prob_metrics);
                metrics.merge(csp_metrics);
                page_times = prepared.timings;
                page_times.merge(prob_times);
                page_times.merge(csp_times);
                match (prob_result, csp_result) {
                    (Ok((prob_counts, _)), Ok((csp_counts, csp_relaxed))) => {
                        report.record(outcome);
                        runs.push(PageRun {
                            site: rs.spec.name.clone(),
                            page,
                            prob: *prob_counts,
                            csp: *csp_counts,
                            used_whole_page: prepared.used_whole_page,
                            csp_relaxed: *csp_relaxed,
                        });
                    }
                    (Err(e), _) | (_, Err(e)) => {
                        metrics.incr(Counter::SolveFailures);
                        report.record_error(e);
                    }
                }
                true
            };
            let _ = processed;
            // Failed pages still get a (zero-time) span, so the tree
            // shape depends only on corpus and chaos config.
            let mut page_span = SpanNode::new(
                SpanKind::Page,
                format!("page#{page}"),
                page_times.total().as_nanos(),
            );
            for span in timing::stage_spans(&page_times) {
                page_span.push(span);
            }
            site_span.nanos += page_span.nanos;
            site_span.push(page_span);
        }
        registry.record(&rs.spec.name, &site_times);
        root.nanos += site_span.nanos;
        root.push(site_span);
    }
    metrics.bump(Counter::PagesOk, report.ok as u64);
    metrics.bump(Counter::PagesDegraded, report.degraded as u64);
    metrics.bump(Counter::PagesFailed, report.failed as u64);
    let warnings: usize = report.warnings.iter().map(|&(_, n)| n).sum();
    metrics.bump(Counter::PageWarnings, warnings as u64);
    RobustBatchOutcome {
        runs,
        report,
        fault_counts,
        timing: registry,
        metrics,
        spans: root,
    }
}

/// Runs both approaches over every list page of a site.
pub fn run_site(spec: &SiteSpec) -> Vec<PageRun> {
    run_sites(std::slice::from_ref(spec), 1).runs
}

/// Runs two arbitrary segmenters over every list page of a site — the
/// ablation binaries use this with variant configurations.
pub fn run_site_with(spec: &SiteSpec, prob: &dyn Segmenter, csp: &dyn Segmenter) -> Vec<PageRun> {
    run_sites_with(std::slice::from_ref(spec), 1, prob, csp).runs
}

/// Runs both approaches over many sites on the default number of threads.
/// Results come back in input order, so reports are deterministic
/// regardless of scheduling.
pub fn run_sites_parallel(specs: &[SiteSpec]) -> Vec<PageRun> {
    run_sites(specs, batch::default_threads()).runs
}

/// Converts page runs into report rows.
pub fn to_rows(runs: &[PageRun]) -> Vec<tableseg_eval::report::Row> {
    runs.iter()
        .map(|r| tableseg_eval::report::Row {
            site: r.site.clone(),
            prob: r.prob,
            csp: r.csp,
            notes: r.notes(),
        })
        .collect()
}

/// Renders the Table 4 report (or the `--clean-only` Section 6.3
/// aggregate) from a batch run's page runs. Shared by the `table4` binary
/// and the determinism tests; contains no timing data, so its output is
/// byte-identical across thread counts.
pub fn table4_report(runs: &[PageRun], clean_only: bool) -> String {
    if clean_only {
        let clean: Vec<_> = runs.iter().filter(|r| !r.csp_relaxed).cloned().collect();
        let mut prob = PageCounts::default();
        let mut csp = PageCounts::default();
        for r in &clean {
            prob = prob.add(&r.prob);
            csp = csp.add(&r.csp);
        }
        return format!(
            "{}\n",
            render_aggregate(
                &format!(
                    "Pages where the CSP found a solution ({} of {} pages) — cf. Section 6.3:",
                    clean.len(),
                    runs.len()
                ),
                &prob,
                &csp,
            )
        );
    }
    format!(
        "Table 4: results of automatic record segmentation (simulated sites)\n\n\
         {}\n\
         Paper (live 2004 sites):  probabilistic P=0.74 R=0.99 F=0.85 | CSP P=0.85 R=0.84 F=0.84\n",
        render_table4(&to_rows(runs))
    )
}

/// Renders the Tables 1–3 report — the Superpages running example (the
/// observation table `D_i`, the CSP assignment of extracts to records,
/// and the positions of extracts on detail pages). Fully in-process and
/// deterministic; shared by the `tables123` binary and the determinism
/// tests.
pub fn tables123_report() -> String {
    use tableseg_extract::build_observations;
    use tableseg_extract::positions::render_table;
    use tableseg_html::lexer::tokenize;
    use tableseg_html::Token;

    // The paper's Figure 1 / Table 1 example: two "John Smith" listings
    // sharing a phone number, plus a third record.
    let list = tokenize(
        "<tr><td>John Smith</td><td>221 Washington</td><td>New Holland</td><td>(740) 335-5555</td></tr>\
         <tr><td>John Smith</td><td>221R Washington St</td><td>Wash CH</td><td>(740) 335-5555</td></tr>\
         <tr><td>George W. Smith</td><td>Findlay, OH</td><td>(419) 423-1212</td></tr>",
    );
    let details = [
        tokenize("<h1>John Smith</h1><p>221 Washington</p><p>New Holland</p><p>(740) 335-5555</p>"),
        tokenize("<h1>John Smith</h1><p>221R Washington St</p><p>Wash CH</p><p>(740) 335-5555</p>"),
        tokenize("<h1>George W. Smith</h1><p>Findlay, OH</p><p>(419) 423-1212</p>"),
    ];
    let detail_refs: Vec<&[Token]> = details.iter().map(Vec::as_slice).collect();
    let obs = build_observations(&list, &[], &detail_refs);

    let mut out = String::new();
    out.push_str("Table 1: observations of extracts on detail pages D_i\n\n");
    out.push_str(&obs.render_table());
    out.push('\n');

    let outcome = CspSegmenter::default().segment(&obs);
    out.push_str("Table 2: assignment of extracts to records (CSP solution)\n\n");
    out.push_str(&outcome.segmentation.render_table(&obs));
    out.push('\n');

    out.push_str("Table 3: positions of extracts on detail pages\n\n");
    out.push_str(&render_table(&obs));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tableseg_sitegen::paper_sites;

    #[test]
    fn clean_site_runs_end_to_end() {
        let runs = run_site(&paper_sites::butler());
        assert_eq!(runs.len(), 2);
        for r in &runs {
            let total = r.csp.total_records();
            assert!(total > 0, "{r:?}");
            // A clean government site should be segmented essentially
            // perfectly by the CSP.
            assert!(r.csp.cor * 10 >= total * 9, "{r:?}");
            assert!(!r.csp_relaxed, "{r:?}");
        }
    }

    #[test]
    fn notes_format() {
        let run = PageRun {
            site: "X".into(),
            page: 0,
            prob: PageCounts::default(),
            csp: PageCounts::default(),
            used_whole_page: true,
            csp_relaxed: true,
        };
        assert_eq!(run.notes(), "a, b, c, d");
    }

    #[test]
    fn batch_timing_covers_every_site_and_stage() {
        let specs = vec![paper_sites::butler(), paper_sites::lee()];
        let outcome = run_sites(&specs, 2);
        assert_eq!(outcome.runs.len(), 4);
        let rows = outcome.timing.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "Butler County");
        assert_eq!(rows[1].0, "Lee County");
        for (site, times) in &rows {
            for stage in Stage::ALL {
                assert!(
                    times.get(stage) > std::time::Duration::ZERO,
                    "{site}: stage {} recorded no time",
                    stage.label()
                );
            }
        }
    }

    #[test]
    fn robust_run_with_noop_chaos_matches_plain_run() {
        let specs = vec![paper_sites::butler(), paper_sites::lee()];
        let plain = run_sites(&specs, 2);
        let robust = run_sites_robust(&specs, &ChaosConfig::off(1), 2);
        assert_eq!(robust.report.failed, 0);
        assert_eq!(robust.runs.len(), plain.runs.len());
        assert_eq!(
            table4_report(&robust.runs, false),
            table4_report(&plain.runs, false),
            "robust path must reproduce the plain report under a no-op config"
        );
        assert!(robust.fault_counts.iter().all(|&(_, n)| n == 0));
    }

    #[test]
    fn robust_run_survives_heavy_chaos() {
        let specs = vec![paper_sites::butler(), paper_sites::ohio()];
        for seed in [7, 8] {
            let outcome = run_sites_robust(&specs, &ChaosConfig::uniform(0.5, seed), 2);
            let r = &outcome.report;
            assert_eq!(r.pages, 4, "every page gets an outcome");
            assert_eq!(r.pages, r.ok + r.degraded + r.failed);
            // Failed pages have no run; every processed page has one.
            assert_eq!(outcome.runs.len(), r.ok + r.degraded);
            let injected: usize = outcome.fault_counts.iter().map(|&(_, n)| n).sum();
            assert!(injected > 0, "50% chaos must fire");
        }
    }

    #[test]
    fn cached_prepare_matches_one_shot() {
        let ps = prepare_site(&paper_sites::butler());
        for page in 0..ps.site.pages.len() {
            let cached = prepare_page_cached(&ps, page);
            let oneshot = prepare_page(&ps.site, page);
            assert_eq!(cached.used_whole_page, oneshot.used_whole_page);
            assert_eq!(cached.extract_offsets, oneshot.extract_offsets);
            assert_eq!(cached.observations.len(), oneshot.observations.len());
        }
    }
}
