//! The template-induction microbenchmark behind `BENCH_induce.json`:
//! Hirschberg pair-LCS vs. the histogram-LCS core on the candidate
//! streams of the simulated paper sites, plus the multi-page
//! quality-vs-cost curve of the rolling merge (2 → 10 sample pages per
//! site).
//!
//! Both LCS cores align the *same* candidate streams — exactly the
//! pairwise inputs induction folds — so the pair comparison isolates the
//! LCS layer. The multi-page curve scales each paper site with
//! [`SiteSpec::with_page_count`](tableseg_sitegen::site::SiteSpec::with_page_count)
//! and records, per page count, the
//! wall-clock of a full histogram induction over the corpus and the
//! aggregate template quality ([`assess`]); the 10-page point is expected
//! to be no worse than the 2-page baseline (the candidate filter only
//! tightens as pages are added).

use std::time::Instant;

use tableseg::html::lexer::tokenize;
use tableseg::html::Token;
use tableseg::template::{
    assess, candidate_streams, induce_with, lcs_indices_histogram, InduceOptions, Interner, Symbol,
};

use crate::corpus::{paper_generated_scaled, BenchJson};

/// One site's interned front-end state, the induction benchmark input.
pub struct InduceFixture {
    /// Site name.
    pub site: String,
    /// Tokenized list pages.
    pub pages: Vec<Vec<Token>>,
    /// Interned symbol streams, aligned with `pages`.
    pub streams: Vec<Vec<Symbol>>,
    /// Interner size (the symbol-id upper bound).
    pub num_symbols: usize,
}

/// Tokenizes and interns every paper site at `page_count` sample pages
/// (sites generated via [`crate::corpus::paper_generated_scaled`]).
pub fn corpus(page_count: usize) -> Vec<InduceFixture> {
    paper_generated_scaled(page_count)
        .into_iter()
        .map(|(spec, site)| {
            let pages: Vec<Vec<Token>> =
                site.pages.iter().map(|p| tokenize(&p.list_html)).collect();
            let mut interner = Interner::new();
            let streams: Vec<Vec<Symbol>> =
                pages.iter().map(|p| interner.intern_tokens(p)).collect();
            InduceFixture {
                site: spec.name.clone(),
                pages,
                streams,
                num_symbols: interner.len(),
            }
        })
        .collect()
}

/// The pair-LCS comparison: both cores over every site's 2-page candidate
/// streams.
#[derive(Debug, Clone, Copy)]
pub struct PairLcsBench {
    /// Best (minimum) nanoseconds of one Hirschberg corpus pass.
    pub hirschberg_ns: u128,
    /// Best (minimum) nanoseconds of one histogram corpus pass.
    pub histogram_ns: u128,
    /// Site pairs aligned per pass.
    pub pairs: usize,
    /// Total anchors (LCS length) found by the histogram pass — identical
    /// to the Hirschberg total by the differential check.
    pub anchors: usize,
    /// Total candidate tokens aligned per pass (sum of window lengths).
    pub tokens: usize,
}

impl PairLcsBench {
    /// Hirschberg / histogram wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        self.hirschberg_ns as f64 / self.histogram_ns.max(1) as f64
    }
}

/// One point of the multi-page quality-vs-cost curve.
#[derive(Debug, Clone, Copy)]
pub struct MergePoint {
    /// Sample pages per site.
    pub pages: usize,
    /// Best (minimum) nanoseconds of one histogram-induction corpus pass.
    pub induce_ns: u128,
    /// Mean `largest_slot_fraction` over the corpus (the table-slot
    /// dominance measure of `quality.rs` — higher is better).
    pub mean_largest_slot_fraction: f64,
    /// Mean template length over the corpus.
    pub mean_template_len: f64,
    /// Sites whose template passed [`TemplateQuality::is_usable`].
    ///
    /// [`TemplateQuality::is_usable`]: tableseg::template::TemplateQuality::is_usable
    pub usable_sites: usize,
}

/// The full induction benchmark result.
#[derive(Debug, Clone)]
pub struct InduceBench {
    /// Number of sites in the corpus.
    pub sites: usize,
    /// The pair-LCS core comparison (2-page candidate streams).
    pub pair: PairLcsBench,
    /// The multi-page curve, ascending in page count (2 → 10).
    pub curve: Vec<MergePoint>,
    /// Corpus passes per timed path; the fastest pass is reported.
    pub iters: usize,
}

impl InduceBench {
    /// The 10-page (last) point of the curve.
    pub fn deep(&self) -> &MergePoint {
        self.curve.last().expect("curve is non-empty")
    }

    /// The 2-page (first) point of the curve.
    pub fn baseline(&self) -> &MergePoint {
        self.curve.first().expect("curve is non-empty")
    }

    /// `true` when the deepest induction's quality is no worse than the
    /// 2-page baseline, on both the table-slot dominance measure and the
    /// usable-site count.
    pub fn quality_non_degrading(&self) -> bool {
        let (base, deep) = (self.baseline(), self.deep());
        deep.mean_largest_slot_fraction + 1e-9 >= base.mean_largest_slot_fraction
            && deep.usable_sites >= base.usable_sites
    }
}

/// Extracts the bare symbol windows the fold aligns for a 2-page site.
fn pair_windows(f: &InduceFixture) -> (Vec<Symbol>, Vec<Symbol>) {
    let filtered = candidate_streams(&f.streams, f.num_symbols);
    let syms = |s: &[(Symbol, usize)]| s.iter().map(|&(sym, _)| sym).collect();
    (syms(&filtered[0]), syms(&filtered[1]))
}

/// Runs the induction benchmark: the differential check, the pair-LCS
/// timing, and the multi-page curve, with `iters` passes per timed path.
///
/// # Panics
///
/// Panics if the histogram core disagrees with the Hirschberg oracle on
/// any site pair (LCS length or subsequence validity), or if any
/// multi-page induction disagrees with the oracle's template length —
/// a speedup that changes results is not a speedup.
pub fn run_induce_bench(iters: usize, page_counts: &[usize]) -> InduceBench {
    let fixtures = corpus(2);
    let windows: Vec<(Vec<Symbol>, Vec<Symbol>)> = fixtures.iter().map(pair_windows).collect();

    // Differential gate, pair level: equal LCS length and a valid common
    // subsequence on every site's candidate windows.
    for (f, (a, b)) in fixtures.iter().zip(&windows) {
        let oracle = tableseg::template::lcs::lcs_indices(a, b);
        let fast = lcs_indices_histogram(a, b);
        assert_eq!(
            fast.len(),
            oracle.len(),
            "{}: histogram LCS length diverged from Hirschberg",
            f.site
        );
        for w in fast.windows(2) {
            assert!(
                w[0].0 < w[1].0 && w[0].1 < w[1].1,
                "{}: trace order",
                f.site
            );
        }
        for &(i, j) in &fast {
            assert_eq!(a[i], b[j], "{}: trace mismatch at ({i}, {j})", f.site);
        }
    }

    // Differential gate, induction level, at 2 pages — where the fold IS
    // a single pair LCS, so both backends must find the same
    // *pre-stability* template length (equal-length traces may pick
    // different symbol sets, so the run-stability pass can legitimately
    // drop different anchor counts afterwards) and the same usability
    // verdict. Beyond 2 pages a progressive fold is trace-dependent
    // (multi-sequence LCS is not canonical), so deeper merges are gated
    // by the permutation-invariance tests and the quality curve instead.
    for f in &fixtures {
        let (hist, hist_stats) = induce_with(
            &f.pages,
            &f.streams,
            f.num_symbols,
            &InduceOptions { histogram: true },
        );
        let (oracle, oracle_stats) = induce_with(
            &f.pages,
            &f.streams,
            f.num_symbols,
            &InduceOptions { histogram: false },
        );
        assert_eq!(
            hist.template.len() + hist_stats.unstable_dropped,
            oracle.template.len() + oracle_stats.unstable_dropped,
            "{}: fold LCS length diverged from oracle",
            f.site
        );
        let hq = assess(&hist, &f.pages);
        let oq = assess(&oracle, &f.pages);
        assert_eq!(
            hq.is_usable(),
            oq.is_usable(),
            "{}: usability verdict diverged from oracle",
            f.site
        );
    }

    // Pair-LCS timing.
    let mut pair = PairLcsBench {
        hirschberg_ns: u128::MAX,
        histogram_ns: u128::MAX,
        pairs: windows.len(),
        anchors: 0,
        tokens: windows.iter().map(|(a, b)| a.len() + b.len()).sum(),
    };
    for _ in 0..iters {
        let t = Instant::now();
        for (a, b) in &windows {
            std::hint::black_box(tableseg::template::lcs::lcs_indices(a, b));
        }
        pair.hirschberg_ns = pair.hirschberg_ns.min(t.elapsed().as_nanos());

        let t = Instant::now();
        let mut anchors = 0usize;
        for (a, b) in &windows {
            anchors += std::hint::black_box(lcs_indices_histogram(a, b)).len();
        }
        pair.histogram_ns = pair.histogram_ns.min(t.elapsed().as_nanos());
        pair.anchors = anchors;
    }

    // Multi-page curve: histogram-induction cost and quality per depth.
    let mut curve = Vec::with_capacity(page_counts.len());
    for &n in page_counts {
        let fixtures = corpus(n);
        let mut induce_ns = u128::MAX;
        for _ in 0..iters {
            let t = Instant::now();
            for f in &fixtures {
                std::hint::black_box(induce_with(
                    &f.pages,
                    &f.streams,
                    f.num_symbols,
                    &InduceOptions { histogram: true },
                ));
            }
            induce_ns = induce_ns.min(t.elapsed().as_nanos());
        }
        let mut fraction_sum = 0.0;
        let mut len_sum = 0usize;
        let mut usable = 0usize;
        for f in &fixtures {
            let (ind, _) = induce_with(
                &f.pages,
                &f.streams,
                f.num_symbols,
                &InduceOptions { histogram: true },
            );
            let q = assess(&ind, &f.pages);
            fraction_sum += q.largest_slot_fraction;
            len_sum += q.template_len;
            usable += usize::from(q.is_usable());
        }
        curve.push(MergePoint {
            pages: n,
            induce_ns,
            mean_largest_slot_fraction: fraction_sum / fixtures.len() as f64,
            mean_template_len: len_sum as f64 / fixtures.len() as f64,
            usable_sites: usable,
        });
    }

    InduceBench {
        sites: fixtures.len(),
        pair,
        curve,
        iters,
    }
}

/// Renders the benchmark as the `BENCH_induce.json` document.
pub fn render_json(bench: &InduceBench) -> String {
    let mut curve = String::from("[\n");
    for (i, p) in bench.curve.iter().enumerate() {
        curve.push_str(&format!(
            "    {{ \"pages\": {}, \"induce_ns\": {}, \"mean_largest_slot_fraction\": {:.4}, \
             \"mean_template_len\": {:.1}, \"usable_sites\": {} }}{}\n",
            p.pages,
            p.induce_ns,
            p.mean_largest_slot_fraction,
            p.mean_template_len,
            p.usable_sites,
            if i + 1 < bench.curve.len() { "," } else { "" }
        ));
    }
    curve.push_str("  ]");

    let mut j = BenchJson::new("induce");
    j.raw(
        "corpus",
        format!(
            "{{ \"sites\": {}, \"pairs\": {}, \"pair_tokens\": {} }}",
            bench.sites, bench.pair.pairs, bench.pair.tokens
        ),
    )
    .field("iters", bench.iters)
    .raw(
        "pair_lcs",
        format!(
            "{{ \"hirschberg_ns\": {}, \"histogram_ns\": {}, \"speedup\": {:.2}, \
             \"anchors\": {} }}",
            bench.pair.hirschberg_ns,
            bench.pair.histogram_ns,
            bench.pair.speedup(),
            bench.pair.anchors
        ),
    )
    .raw("multi_page", curve)
    .field("quality_non_degrading", bench.quality_non_degrading())
    .raw("differential", "{ \"histogram_equals_hirschberg\": true }");
    j.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tableseg_sitegen::paper_sites;

    #[test]
    fn corpus_scales_page_counts() {
        let two = corpus(2);
        assert_eq!(two.len(), paper_sites::all().len());
        assert!(two.iter().all(|f| f.pages.len() == 2));
        let four = corpus(4);
        assert!(four.iter().all(|f| f.pages.len() == 4));
    }

    #[test]
    fn pair_windows_are_unique_per_side() {
        for f in corpus(2) {
            let (a, b) = pair_windows(&f);
            for w in [&a, &b] {
                let mut sorted = w.clone();
                sorted.sort_unstable();
                let len = sorted.len();
                sorted.dedup();
                assert_eq!(sorted.len(), len, "{}: candidate stream repeats", f.site);
            }
        }
    }

    #[test]
    fn json_shape() {
        let bench = InduceBench {
            sites: 12,
            pair: PairLcsBench {
                hirschberg_ns: 8000,
                histogram_ns: 2000,
                pairs: 12,
                anchors: 340,
                tokens: 900,
            },
            curve: vec![
                MergePoint {
                    pages: 2,
                    induce_ns: 5000,
                    mean_largest_slot_fraction: 0.81,
                    mean_template_len: 55.0,
                    usable_sites: 9,
                },
                MergePoint {
                    pages: 10,
                    induce_ns: 21000,
                    mean_largest_slot_fraction: 0.84,
                    mean_template_len: 54.0,
                    usable_sites: 10,
                },
            ],
            iters: 2,
        };
        assert!((bench.pair.speedup() - 4.0).abs() < 1e-9);
        assert!(bench.quality_non_degrading());
        let json = render_json(&bench);
        assert!(json.contains("\"schema\": \"tableseg.bench/v2\""));
        assert!(json.contains("\"speedup\": 4.00"));
        assert!(json.contains("\"pages\": 10"));
        assert!(json.contains("\"quality_non_degrading\": true"));
        assert!(json.contains("\"histogram_equals_hirschberg\": true"));
        assert!(json.starts_with('{') && json.ends_with("}\n"));
    }

    #[test]
    fn quality_gate_detects_degradation() {
        let point = |fraction, usable| MergePoint {
            pages: 2,
            induce_ns: 0,
            mean_largest_slot_fraction: fraction,
            mean_template_len: 0.0,
            usable_sites: usable,
        };
        let bench = InduceBench {
            sites: 12,
            pair: PairLcsBench {
                hirschberg_ns: 1,
                histogram_ns: 1,
                pairs: 0,
                anchors: 0,
                tokens: 0,
            },
            curve: vec![point(0.9, 10), point(0.7, 10)],
            iters: 1,
        };
        assert!(!bench.quality_non_degrading());
    }
}
