//! The `tablesegd` closed-loop load benchmark behind `BENCH_serve.json`.
//!
//! An in-process daemon serves the 12-site paper corpus over real TCP
//! (the client helpers speak bytes over a socket — no in-process
//! shortcuts past the HTTP door). Two phases:
//!
//! * **cold** — every request is preceded by an invalidation, so each
//!   one pays the full per-site front end: template induction plus
//!   every per-page stage. Serial, `rounds` passes over the corpus.
//! * **warm** — the corpus is primed once, then `clients` closed-loop
//!   threads hammer it for `secs` seconds. Every request hits the site
//!   cache: the template is reused and resident targets re-run nothing,
//!   which is where the served p50 collapses.
//!
//! The report carries p50/p99 latency per phase, the warm/cold p50
//! speedup (the CI gate: the issue demands ≥ 2×), request throughput,
//! and the daemon's own cache hit rate read back from `/metrics`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use tableseg_serve::client;
use tableseg_serve::{SegmentRequest, Server, ServerConfig, TargetSpec};
use tableseg_sitegen::paper_sites;
use tableseg_sitegen::site::{generate, GeneratedSite};

use crate::corpus::BenchJson;

/// Serve-benchmark configuration.
#[derive(Debug, Clone)]
pub struct ServeBenchConfig {
    /// Warm closed-loop duration, seconds.
    pub secs: f64,
    /// Warm closed-loop client threads.
    pub clients: usize,
    /// Cold passes over the corpus (each request preceded by an
    /// invalidation).
    pub rounds: usize,
    /// Batch-engine threads inside the daemon.
    pub batch_threads: usize,
    /// Daemon HTTP worker threads.
    pub workers: usize,
}

impl Default for ServeBenchConfig {
    fn default() -> ServeBenchConfig {
        ServeBenchConfig {
            secs: 5.0,
            clients: 4,
            rounds: 3,
            batch_threads: 2,
            workers: 4,
        }
    }
}

/// The measurements `BENCH_serve.json` is rendered from.
#[derive(Debug, Clone)]
pub struct ServeBench {
    /// Sites in the corpus.
    pub sites: usize,
    /// List pages across the corpus.
    pub pages: usize,
    /// Cold requests issued.
    pub cold_requests: usize,
    /// Warm requests issued.
    pub warm_requests: usize,
    /// Cold latency percentiles, microseconds.
    pub cold_p50_us: u64,
    /// Cold p99, microseconds.
    pub cold_p99_us: u64,
    /// Warm p50, microseconds.
    pub warm_p50_us: u64,
    /// Warm p99, microseconds.
    pub warm_p99_us: u64,
    /// `cold_p50 / warm_p50` — the headline gate.
    pub speedup_p50: f64,
    /// Warm phase requests per second (all clients).
    pub warm_rps: f64,
    /// Cache hit rate over the whole run, from the daemon's `/metrics`
    /// (`hits / (hits + misses + refreshes)`).
    pub hit_rate: f64,
}

/// Generates the paper corpus and shapes each site into one
/// [`SegmentRequest`] covering all of its list pages. Shared with the
/// black-box service test suites.
pub fn corpus_requests() -> Vec<(GeneratedSite, SegmentRequest)> {
    paper_sites::all()
        .iter()
        .map(|spec| {
            let site = generate(spec);
            let list_pages: Vec<String> = site.list_htmls().iter().map(|p| p.to_string()).collect();
            let targets: Vec<TargetSpec> = (0..site.pages.len())
                .map(|page| TargetSpec {
                    target: page,
                    details: site.pages[page].detail_html.clone(),
                })
                .collect();
            let request = SegmentRequest {
                site: spec.name.clone(),
                list_pages,
                targets,
            };
            (site, request)
        })
        .collect()
}

/// Nearest-rank percentile of an unsorted latency sample.
pub fn percentile_us(latencies: &mut [u64], p: f64) -> u64 {
    if latencies.is_empty() {
        return 0;
    }
    latencies.sort_unstable();
    let rank = ((latencies.len() - 1) as f64 * p / 100.0).round() as usize;
    latencies[rank.min(latencies.len() - 1)]
}

fn scrape_counter(metrics: &str, name: &str) -> f64 {
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0.0)
}

/// Runs both phases against an in-process daemon and returns the
/// measurements.
pub fn run_serve_bench(cfg: &ServeBenchConfig) -> ServeBench {
    let corpus = Arc::new(corpus_requests());
    let sites = corpus.len();
    let pages: usize = corpus.iter().map(|(site, _)| site.pages.len()).sum();
    let server = Server::start(ServerConfig {
        workers: cfg.workers.max(1),
        batch_threads: cfg.batch_threads.max(1),
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.addr();

    // Cold phase: invalidate-then-segment, serially, so every latency
    // sample pays the full front end.
    let mut cold_us: Vec<u64> = Vec::new();
    for _ in 0..cfg.rounds.max(1) {
        for (_, request) in corpus.iter() {
            client::invalidate(addr, &request.site).expect("invalidate");
            let started = Instant::now();
            let resp = client::segment(addr, request, None, true).expect("cold segment");
            cold_us.push(started.elapsed().as_micros() as u64);
            assert_eq!(resp.cache, "cold", "post-invalidation request must be cold");
        }
    }

    // Prime, then hammer: every subsequent request is a warm hit.
    for (_, request) in corpus.iter() {
        let resp = client::segment(addr, request, None, true).expect("prime segment");
        assert_eq!(resp.cache, "warm", "primed corpus must serve warm");
    }
    let warm_started = Instant::now();
    let deadline = warm_started + Duration::from_secs_f64(cfg.secs.max(0.1));
    let mut handles = Vec::new();
    for client_idx in 0..cfg.clients.max(1) {
        let corpus = Arc::clone(&corpus);
        handles.push(std::thread::spawn(move || {
            let mut latencies: Vec<u64> = Vec::new();
            let mut i = client_idx; // offset so clients interleave sites
            while Instant::now() < deadline {
                let (_, request) = &corpus[i % corpus.len()];
                i += 1;
                let started = Instant::now();
                let resp = client::segment(addr, request, None, true).expect("warm segment");
                latencies.push(started.elapsed().as_micros() as u64);
                assert_eq!(resp.cache, "warm", "steady state must stay warm");
            }
            latencies
        }));
    }
    let mut warm_us: Vec<u64> = Vec::new();
    for handle in handles {
        warm_us.extend(handle.join().expect("client thread"));
    }
    let warm_elapsed = warm_started.elapsed().as_secs_f64();

    let metrics = client::metrics(addr).expect("metrics scrape");
    server.shutdown();

    let hits = scrape_counter(&metrics, "tableseg_serve_cache_hits_total");
    let misses = scrape_counter(&metrics, "tableseg_serve_cache_misses_total");
    let refreshes = scrape_counter(&metrics, "tableseg_serve_cache_refreshes_total");
    let lookups = hits + misses + refreshes;

    let cold_requests = cold_us.len();
    let warm_requests = warm_us.len();
    let cold_p50_us = percentile_us(&mut cold_us, 50.0);
    let cold_p99_us = percentile_us(&mut cold_us, 99.0);
    let warm_p50_us = percentile_us(&mut warm_us, 50.0);
    let warm_p99_us = percentile_us(&mut warm_us, 99.0);
    ServeBench {
        sites,
        pages,
        cold_requests,
        warm_requests,
        cold_p50_us,
        cold_p99_us,
        warm_p50_us,
        warm_p99_us,
        speedup_p50: cold_p50_us as f64 / warm_p50_us.max(1) as f64,
        warm_rps: warm_requests as f64 / warm_elapsed.max(f64::EPSILON),
        hit_rate: if lookups > 0.0 { hits / lookups } else { 0.0 },
    }
}

/// Renders `BENCH_serve.json`.
pub fn render_json(cfg: &ServeBenchConfig, bench: &ServeBench) -> String {
    let mut j = BenchJson::new("serve");
    j.corpus(bench.sites, bench.pages, 0)
        .field("rounds", cfg.rounds)
        .field("clients", cfg.clients)
        .field("batch_threads", cfg.batch_threads)
        .raw("warm_secs", format!("{:.1}", cfg.secs))
        .field("cold_requests", bench.cold_requests)
        .field("warm_requests", bench.warm_requests)
        .field("cold_p50_us", bench.cold_p50_us)
        .field("cold_p99_us", bench.cold_p99_us)
        .field("warm_p50_us", bench.warm_p50_us)
        .field("warm_p99_us", bench.warm_p99_us)
        .raw("speedup_p50", format!("{:.2}", bench.speedup_p50))
        .raw("warm_req_per_sec", format!("{:.1}", bench.warm_rps))
        .raw("cache_hit_rate", format!("{:.4}", bench.hit_rate));
    j.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let mut sample = vec![40, 10, 30, 20];
        assert_eq!(percentile_us(&mut sample, 50.0), 30);
        assert_eq!(percentile_us(&mut sample, 0.0), 10);
        assert_eq!(percentile_us(&mut sample, 100.0), 40);
        assert_eq!(percentile_us(&mut [], 50.0), 0);
    }

    #[test]
    fn corpus_requests_cover_the_paper_sites() {
        let corpus = corpus_requests();
        assert_eq!(corpus.len(), paper_sites::all().len());
        for (site, request) in &corpus {
            assert_eq!(request.targets.len(), site.pages.len());
            assert!(!request.list_pages.is_empty());
        }
    }

    #[test]
    fn scrape_counter_reads_prometheus_lines() {
        let dump = "# TYPE tableseg_serve_cache_hits_total counter\n\
                    tableseg_serve_cache_hits_total 42\n";
        assert_eq!(
            scrape_counter(dump, "tableseg_serve_cache_hits_total"),
            42.0
        );
        assert_eq!(scrape_counter(dump, "absent"), 0.0);
    }
}
