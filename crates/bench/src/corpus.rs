//! Shared corpus construction and bench-report helpers.
//!
//! Every microbenchmark in this crate (`matchbench`, `solvebench`,
//! `inducebench`, `scalebench`) walks the same twelve simulated paper
//! sites and writes a hand-rolled `BENCH_*.json` document (the serde
//! shim is a no-op marker, so JSON is rendered as strings throughout
//! the repo). This module owns the parts they used to copy:
//!
//! * the corpus builders over [`paper_sites::all`] — generation plus
//!   the once-per-site template, or page-count-scaled generation for
//!   induction depth curves;
//! * [`site_count`], the grouped-fixture site counter;
//! * [`stage_totals`], the corpus-wide per-stage wall-clock totals of
//!   a batch run (every `stage_totals_ns` JSON map comes from here);
//! * [`BenchJson`], the top-level document builder. Every document it
//!   produces carries a `"schema"` version field ([`SCHEMA`]) so
//!   downstream tooling can detect layout changes, and a `"bench"`
//!   name identifying the benchmark.

use tableseg::timing::{Registry, Stage};
use tableseg_sitegen::paper_sites;
use tableseg_sitegen::site::{generate, GeneratedSite, SiteSpec};

use crate::{prepare_site, PreparedSite};

/// Version tag stamped into every `BENCH_*.json` document as the
/// `"schema"` field. Bump when a writer changes field names or layout.
pub const SCHEMA: &str = "tableseg.bench/v2";

/// Generates every simulated paper site and builds its cached
/// [`SiteTemplate`](tableseg::SiteTemplate) — the shared site-level
/// front end of the matcher and solver corpora.
pub fn paper_prepared() -> Vec<PreparedSite> {
    paper_sites::all().iter().map(prepare_site).collect()
}

/// Generates every simulated paper site scaled to `page_count` sample
/// list pages — the induction benchmark's depth-curve corpus.
pub fn paper_generated_scaled(page_count: usize) -> Vec<(SiteSpec, GeneratedSite)> {
    paper_sites::all()
        .iter()
        .map(|spec| {
            let scaled = spec.with_page_count(page_count);
            let site = generate(&scaled);
            (scaled, site)
        })
        .collect()
}

/// Counts distinct sites in a fixture list's site-name column.
///
/// Corpus builders emit fixtures grouped by site, so consecutive
/// deduplication is exact.
pub fn site_count<'a>(names: impl IntoIterator<Item = &'a str>) -> usize {
    let mut names: Vec<&str> = names.into_iter().collect();
    names.dedup();
    names.len()
}

/// Sums a batch run's per-site stage times into corpus-wide totals, in
/// report order: the six pipeline stages, then the solve split.
pub fn stage_totals(timing: &Registry) -> Vec<(String, u128)> {
    let rows = timing.rows();
    Stage::ALL
        .into_iter()
        .chain(Stage::SOLVE_SPLIT)
        .map(|stage| {
            let total: u128 = rows
                .iter()
                .map(|(_, times)| times.get(stage).as_nanos())
                .sum();
            (stage.label().to_owned(), total)
        })
        .collect()
}

/// Builder for the top-level `BENCH_*.json` document.
///
/// Opens with the `"schema"` version field and the `"bench"` name;
/// fields render in insertion order; [`BenchJson::finish`] closes the
/// document. Values are raw JSON fragments — numbers via
/// [`BenchJson::field`], pre-rendered objects/arrays/strings via
/// [`BenchJson::raw`].
#[derive(Debug, Clone)]
pub struct BenchJson {
    entries: Vec<String>,
}

impl BenchJson {
    /// Starts a document for the benchmark named `bench`.
    pub fn new(bench: &str) -> BenchJson {
        let mut b = BenchJson {
            entries: Vec::new(),
        };
        b.raw("schema", format!("\"{SCHEMA}\""));
        b.raw("bench", format!("\"{bench}\""));
        b
    }

    /// Appends `"key": value` with `value` rendered verbatim — use for
    /// pre-rendered JSON objects, arrays, and quoted strings.
    pub fn raw(&mut self, key: &str, value: impl Into<String>) -> &mut BenchJson {
        self.entries.push(format!("  \"{key}\": {}", value.into()));
        self
    }

    /// Appends `"key": value` for a plain scalar (number or bool).
    pub fn field(&mut self, key: &str, value: impl std::fmt::Display) -> &mut BenchJson {
        self.raw(key, value.to_string())
    }

    /// Appends the standard corpus header object.
    pub fn corpus(&mut self, sites: usize, pages: usize, extracts: usize) -> &mut BenchJson {
        self.raw(
            "corpus",
            format!("{{ \"sites\": {sites}, \"pages\": {pages}, \"extracts\": {extracts} }}"),
        )
    }

    /// Appends the `stage_totals_ns` map (see [`stage_totals`]).
    pub fn stage_totals(&mut self, totals: &[(String, u128)]) -> &mut BenchJson {
        let body: Vec<String> = totals
            .iter()
            .map(|(stage, ns)| format!("\"{stage}\": {ns}"))
            .collect();
        if body.is_empty() {
            self.raw("stage_totals_ns", "{ }")
        } else {
            self.raw("stage_totals_ns", format!("{{ {} }}", body.join(", ")))
        }
    }

    /// Renders the finished document.
    pub fn finish(&self) -> String {
        format!("{{\n{}\n}}\n", self.entries.join(",\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_opens_with_schema_and_bench() {
        let mut j = BenchJson::new("example");
        j.corpus(12, 24, 100)
            .field("iters", 3)
            .raw("speedup", format!("{:.2}", 3.5))
            .stage_totals(&[("tokenize".into(), 42u128), ("solve".into(), 7u128)]);
        let json = j.finish();
        assert!(json
            .starts_with("{\n  \"schema\": \"tableseg.bench/v2\",\n  \"bench\": \"example\",\n"));
        assert!(json.contains("\"corpus\": { \"sites\": 12, \"pages\": 24, \"extracts\": 100 }"));
        assert!(json.contains("\"speedup\": 3.50"));
        assert!(json.contains("\"stage_totals_ns\": { \"tokenize\": 42, \"solve\": 7 }"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn empty_stage_totals_render_as_empty_map() {
        let mut j = BenchJson::new("x");
        j.stage_totals(&[]);
        assert!(j.finish().contains("\"stage_totals_ns\": { }"));
    }

    #[test]
    fn site_count_dedups_grouped_names() {
        assert_eq!(site_count(["a", "a", "b", "c", "c", "c"]), 3);
        assert_eq!(site_count([]), 0);
    }

    #[test]
    fn stage_totals_cover_all_stages_and_solve_split() {
        let totals = stage_totals(&Registry::new());
        assert_eq!(totals.len(), Stage::ALL.len() + Stage::SOLVE_SPLIT.len());
        assert_eq!(totals[0].0, Stage::ALL[0].label());
        assert!(totals.iter().all(|&(_, ns)| ns == 0));
    }

    #[test]
    fn prepared_corpus_covers_every_paper_site() {
        let prepared = paper_prepared();
        assert_eq!(prepared.len(), paper_sites::all().len());
        let scaled = paper_generated_scaled(3);
        assert_eq!(scaled.len(), prepared.len());
        assert!(scaled.iter().all(|(_, site)| site.pages.len() == 3));
    }
}
