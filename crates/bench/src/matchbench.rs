//! The matcher microbenchmark behind `BENCH_frontend.json`: naive
//! string-scanning extract matching vs. the production indexed symbol
//! matcher, over the twelve simulated paper sites.
//!
//! Criterion owns the statistically careful per-site numbers
//! (`benches/frontend.rs`); this module is the cheap whole-corpus
//! wall-clock comparison that the `table4 --bench-json` smoke run emits
//! into CI artifacts.

use std::time::Instant;

use crate::corpus::{paper_prepared, site_count, BenchJson};
use tableseg::SiteTemplate;
use tableseg_extract::{
    derive_extracts, match_extracts_indexed, match_extracts_naive, Extract, Observations, PageIndex,
};
use tableseg_html::lexer::tokenize;
use tableseg_html::{Symbol, Token};

/// One page of the benchmark corpus, prepared for both matcher paths.
///
/// The whole list page is the table slot (every extract participates),
/// the site's other list pages feed the all-list-pages filter, and the
/// page's detail pages are the match targets — the same shape
/// `prepare_with_template` produces, minus slot selection.
pub struct MatchFixture {
    /// Site name.
    pub site: String,
    /// Extracts of the list page (cloned per run; derivation is not timed).
    pub extracts: Vec<Extract>,
    /// The site's cached template (interner, streams, list-page indexes).
    pub template: SiteTemplate,
    /// Which list page the extracts came from.
    pub page: usize,
    /// Tokenized detail pages of the list page.
    pub details: Vec<Vec<Token>>,
}

impl MatchFixture {
    /// Runs the naive oracle path: build [`tableseg_extract::MatchStream`]s
    /// for every page, scan each extract over each stream.
    pub fn run_naive(&self) -> Observations {
        self.run_naive_with(self.extracts.clone())
    }

    /// [`MatchFixture::run_naive`] on pre-cloned extracts, so timed loops
    /// can keep the deep `Extract` clone (which production never performs
    /// — matching takes ownership) out of the measurement.
    pub fn run_naive_with(&self, extracts: Vec<Extract>) -> Observations {
        let others: Vec<&[Token]> = self.other_pages();
        let details: Vec<&[Token]> = self.details.iter().map(Vec::as_slice).collect();
        match_extracts_naive(extracts, &others, &details)
    }

    /// Runs the production path: project + index the detail pages through
    /// the site interner, reuse the cached other-list-page indexes, match
    /// every needle against the first-symbol buckets.
    pub fn run_indexed(&self) -> Observations {
        self.run_indexed_with(self.extracts.clone())
    }

    /// [`MatchFixture::run_indexed`] on pre-cloned extracts; see
    /// [`MatchFixture::run_naive_with`].
    pub fn run_indexed_with(&self, extracts: Vec<Extract>) -> Observations {
        let syms = &self.template.streams[self.page];
        let needles: Vec<&[Symbol]> = extracts
            .iter()
            .map(|e| &syms[e.start..e.start + e.len()])
            .collect();
        let other_indexes: Vec<&PageIndex> = self
            .template
            .page_indexes
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != self.page)
            .map(|(_, idx)| idx)
            .collect();
        let detail_indexes: Vec<PageIndex> = self
            .details
            .iter()
            .map(|p| PageIndex::build(p, &self.template.interner))
            .collect();
        let detail_refs: Vec<&PageIndex> = detail_indexes.iter().collect();
        match_extracts_indexed(extracts, &needles, &other_indexes, &detail_refs)
    }

    fn other_pages(&self) -> Vec<&[Token]> {
        self.template
            .pages
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != self.page)
            .map(|(_, p)| p.as_slice())
            .collect()
    }
}

/// Builds the benchmark corpus: every list page of every simulated paper
/// site, with the site template built once per site (via
/// [`crate::corpus::paper_prepared`]).
pub fn corpus() -> Vec<MatchFixture> {
    let mut fixtures = Vec::new();
    for ps in paper_prepared() {
        for (page, gp) in ps.site.pages.iter().enumerate() {
            let extracts = derive_extracts(&ps.template.pages[page]);
            let details: Vec<Vec<Token>> = gp.detail_html.iter().map(|d| tokenize(d)).collect();
            fixtures.push(MatchFixture {
                site: ps.spec.name.clone(),
                extracts,
                // The template is cheap to clone relative to bench runtime
                // and keeps each fixture self-contained.
                template: ps.template.clone(),
                page,
                details,
            });
        }
    }
    fixtures
}

/// The corpus-level result of the naive-vs-indexed comparison.
#[derive(Debug, Clone, Copy)]
pub struct MatchBench {
    /// Number of sites in the corpus.
    pub sites: usize,
    /// Number of list pages matched.
    pub pages: usize,
    /// Total extracts matched per iteration.
    pub extracts: usize,
    /// Best (minimum) wall-clock nanoseconds of one naive corpus pass.
    pub naive_ns: u128,
    /// Best (minimum) wall-clock nanoseconds of one indexed corpus pass.
    pub indexed_ns: u128,
    /// Corpus passes each path ran; the reported time is the fastest
    /// pass, which is robust to interference from other load.
    pub iters: usize,
}

impl MatchBench {
    /// naive / indexed wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        self.naive_ns as f64 / self.indexed_ns.max(1) as f64
    }
}

/// Times both matcher paths over the full corpus, `iters` times each,
/// verifying on the first iteration that they produce identical
/// observation tables.
pub fn run_match_bench(iters: usize) -> MatchBench {
    let fixtures = corpus();
    let sites = site_count(fixtures.iter().map(|f| f.site.as_str()));
    let extracts = fixtures.iter().map(|f| f.extracts.len()).sum();

    for f in &fixtures {
        let naive = f.run_naive();
        let fast = f.run_indexed();
        assert_eq!(
            naive.items, fast.items,
            "{}: indexed matcher diverged from oracle",
            f.site
        );
    }

    let mut naive_ns = u128::MAX;
    let mut indexed_ns = u128::MAX;
    for _ in 0..iters {
        // Clone outside the timed region: production derives extracts
        // fresh each page and hands them to matching by value.
        let clones: Vec<Vec<Extract>> = fixtures.iter().map(|f| f.extracts.clone()).collect();
        let t = Instant::now();
        for (f, ex) in fixtures.iter().zip(clones) {
            std::hint::black_box(f.run_naive_with(ex));
        }
        naive_ns = naive_ns.min(t.elapsed().as_nanos());

        let clones: Vec<Vec<Extract>> = fixtures.iter().map(|f| f.extracts.clone()).collect();
        let t = Instant::now();
        for (f, ex) in fixtures.iter().zip(clones) {
            std::hint::black_box(f.run_indexed_with(ex));
        }
        indexed_ns = indexed_ns.min(t.elapsed().as_nanos());
    }

    MatchBench {
        sites,
        pages: fixtures.len(),
        extracts,
        naive_ns,
        indexed_ns,
        iters,
    }
}

/// Renders the benchmark (plus per-stage totals of a batch run, if given)
/// as the `BENCH_frontend.json` document.
pub fn render_json(bench: &MatchBench, stage_totals: &[(String, u128)]) -> String {
    let mut j = BenchJson::new("frontend_match");
    j.corpus(bench.sites, bench.pages, bench.extracts)
        .field("iters", bench.iters)
        .field("naive_ns", bench.naive_ns)
        .field("indexed_ns", bench.indexed_ns)
        .raw("speedup", format!("{:.2}", bench.speedup()))
        .stage_totals(stage_totals);
    j.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tableseg_sitegen::paper_sites;

    #[test]
    fn corpus_covers_all_sites() {
        let fixtures = corpus();
        assert_eq!(
            fixtures.len(),
            paper_sites::all().iter().map(|_| 2).sum::<usize>(),
            "two list pages per site"
        );
        assert!(fixtures.iter().all(|f| !f.extracts.is_empty()));
    }

    #[test]
    fn paths_agree_and_speedup_positive() {
        let bench = run_match_bench(1);
        assert_eq!(bench.iters, 1);
        assert!(bench.sites >= 12);
        assert!(bench.speedup() > 0.0);
    }

    #[test]
    fn json_shape() {
        let bench = MatchBench {
            sites: 12,
            pages: 24,
            extracts: 100,
            naive_ns: 3000,
            indexed_ns: 1000,
            iters: 2,
        };
        let json = render_json(&bench, &[("tokenize".into(), 42)]);
        assert!(json.contains("\"schema\": \"tableseg.bench/v2\""));
        assert!(json.contains("\"speedup\": 3.00"));
        assert!(json.contains("\"tokenize\": 42"));
        assert!(json.starts_with('{') && json.ends_with("}\n"));
    }
}
