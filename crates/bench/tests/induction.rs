//! Multi-page induction invariants and the chaos fuzz gate.
//!
//! The histogram rolling merge folds pages in a canonical order, so the
//! induced template must be invariant under permutations of the sample
//! pages; adding pages must not degrade template quality (the candidate
//! filter only tightens); and both LCS cores must survive arbitrary
//! chaos-mutated byte soup without panicking, agreeing on LCS length with
//! valid traces throughout. Seeds mix in `PROPTEST_SEED` when set, so the
//! CI seed matrix drives distinct corpora through the same invariants.

use tableseg::html::lexer::tokenize_bytes;
use tableseg::html::Token;
use tableseg::template::lcs::lcs_indices;
use tableseg::template::{
    assess, candidate_streams, induce_histogram, induce_interned, lcs_indices_histogram, Induction,
    Interner, Symbol,
};
use tableseg_sitegen::chaos::{apply_chaos, ChaosConfig};
use tableseg_sitegen::paper_sites;
use tableseg_sitegen::site::generate;

/// The base fuzz seed: `PROPTEST_SEED` when set (decimal or `0x` hex),
/// a fixed default otherwise.
fn base_seed() -> u64 {
    match std::env::var("PROPTEST_SEED") {
        Ok(raw) => match raw.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16).expect("PROPTEST_SEED hex"),
            None => raw.parse().expect("PROPTEST_SEED u64"),
        },
        Err(_) => 0x7AB1E5E6,
    }
}

fn intern_pages(pages: &[Vec<Token>]) -> (Vec<Vec<Symbol>>, usize) {
    let mut interner = Interner::new();
    let streams = pages.iter().map(|p| interner.intern_tokens(p)).collect();
    (streams, interner.len())
}

fn template_texts(ind: &Induction) -> Vec<String> {
    ind.template.tokens.iter().map(|t| t.text.clone()).collect()
}

/// Every anchor must point at a token whose text matches its template
/// token, with strictly increasing positions per page.
fn assert_valid_embedding(ind: &Induction, pages: &[Vec<Token>], ctx: &str) {
    assert_eq!(
        ind.anchors.len(),
        pages.len(),
        "{ctx}: one anchor row per page"
    );
    for (p, anchor) in ind.anchors.iter().enumerate() {
        assert_eq!(
            anchor.len(),
            ind.template.len(),
            "{ctx}: page {p} anchor width"
        );
        for w in anchor.windows(2) {
            assert!(w[0] < w[1], "{ctx}: page {p} anchors not increasing");
        }
        for (k, &pos) in anchor.iter().enumerate() {
            assert_eq!(
                pages[p][pos].text, ind.template.tokens[k].text,
                "{ctx}: page {p} anchor {k} text mismatch"
            );
        }
    }
}

/// The canonical fold order makes the induced template independent of the
/// order the sample pages arrive in — the property that lets a crawler
/// feed pages into a site's template in any order.
#[test]
fn merge_order_permutations_yield_the_same_template() {
    let perms: [[usize; 4]; 6] = [
        [0, 1, 2, 3],
        [3, 2, 1, 0],
        [1, 0, 3, 2],
        [2, 3, 0, 1],
        [1, 2, 3, 0],
        [3, 0, 2, 1],
    ];
    for spec in [
        paper_sites::butler(),
        paper_sites::lee(),
        paper_sites::ohio(),
    ] {
        let site = generate(&spec.with_page_count(4));
        let pages: Vec<Vec<Token>> = site
            .pages
            .iter()
            .map(|p| tokenize_bytes(p.list_html.as_bytes()))
            .collect();
        let mut baseline: Option<Vec<String>> = None;
        for perm in perms {
            let permuted: Vec<Vec<Token>> = perm.iter().map(|&i| pages[i].clone()).collect();
            let (streams, num_symbols) = intern_pages(&permuted);
            let ind = induce_histogram(&permuted, &streams, num_symbols);
            assert_valid_embedding(&ind, &permuted, &format!("{} {perm:?}", spec.name));
            let texts = template_texts(&ind);
            match &baseline {
                None => baseline = Some(texts),
                Some(base) => assert_eq!(
                    &texts, base,
                    "{}: permutation {perm:?} changed the template",
                    spec.name
                ),
            }
        }
    }
}

/// Folding more sample pages must tighten the template, not degrade it:
/// the usability verdict never flips off, and the table slot keeps (or
/// grows) its share of the varying text, from 2 up to 10 pages.
#[test]
fn quality_is_monotone_non_degrading_from_2_to_10_pages() {
    let mut fraction_2 = 0.0;
    let mut fraction_10 = 0.0;
    let mut usable_2 = 0usize;
    let mut usable_10 = 0usize;
    for spec in paper_sites::all() {
        let mut per_site = Vec::new();
        for n in [2usize, 6, 10] {
            let site = generate(&spec.with_page_count(n));
            let pages: Vec<Vec<Token>> = site
                .pages
                .iter()
                .map(|p| tokenize_bytes(p.list_html.as_bytes()))
                .collect();
            let (streams, num_symbols) = intern_pages(&pages);
            let ind = induce_histogram(&pages, &streams, num_symbols);
            assert_valid_embedding(&ind, &pages, &format!("{} at {n} pages", spec.name));
            let q = assess(&ind, &pages);
            per_site.push((n, q));
        }
        let (_, first) = per_site[0];
        let (_, last) = *per_site.last().unwrap();
        assert!(
            !first.is_usable() || last.is_usable(),
            "{}: usable at 2 pages but not at 10: {first:?} -> {last:?}",
            spec.name
        );
        // The per-site slot fraction may wobble slightly as chrome slots
        // shift; on usable sites it must never collapse. Degenerate sites
        // (numbered entries chopping the table) are noisy per-site and
        // only held to the corpus aggregate below.
        if first.is_usable() {
            assert!(
                last.largest_slot_fraction >= first.largest_slot_fraction - 0.05,
                "{}: slot fraction collapsed {:.4} -> {:.4}",
                spec.name,
                first.largest_slot_fraction,
                last.largest_slot_fraction
            );
        }
        fraction_2 += first.largest_slot_fraction;
        fraction_10 += last.largest_slot_fraction;
        usable_2 += usize::from(first.is_usable());
        usable_10 += usize::from(last.is_usable());
    }
    // Corpus-level: strictly non-degrading.
    assert!(
        fraction_10 + 1e-9 >= fraction_2,
        "corpus slot fraction degraded: {fraction_2:.4} -> {fraction_10:.4}"
    );
    assert!(
        usable_10 >= usable_2,
        "usable sites degraded: {usable_2} -> {usable_10}"
    );
}

/// Seeded fuzz: chaos-mutated pages through `tokenize_bytes`, then both
/// LCS cores and both induction backends. Nothing may panic; traces must
/// stay valid common subsequences; the cores must agree on LCS length on
/// every window shape the mutations produce.
#[test]
fn chaos_mutated_pages_drive_both_lcs_paths_safely() {
    let base = base_seed();
    let specs = [
        paper_sites::butler(),
        paper_sites::amazon(),
        paper_sites::ohio(),
    ];
    for round in 0..4u64 {
        for (si, spec) in specs.iter().enumerate() {
            let seed = base
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(round * 31 + si as u64);
            let (site, _log) = apply_chaos(&generate(spec), &ChaosConfig::uniform(0.4, seed));
            let pages: Vec<Vec<Token>> = site
                .pages
                .iter()
                .map(|p| tokenize_bytes(p.list_html.as_bytes()))
                .collect();
            let (streams, num_symbols) = intern_pages(&pages);
            let ctx = format!("{} seed {seed:#x}", spec.name);

            // Full raw streams (truncated for the quadratic oracle):
            // repeat-heavy windows that drive the histogram core's filter,
            // fallback and split paths.
            let a: Vec<Symbol> = streams[0].iter().copied().take(500).collect();
            let b: Vec<Symbol> = streams[1].iter().copied().take(500).collect();
            check_cores_agree(&a, &b, &format!("{ctx} raw"));

            // Candidate streams: the unique-per-page fast path.
            let filtered = candidate_streams(&streams, num_symbols);
            let fa: Vec<Symbol> = filtered[0].iter().map(|&(s, _)| s).collect();
            let fb: Vec<Symbol> = filtered[1].iter().map(|&(s, _)| s).collect();
            check_cores_agree(&fa, &fb, &format!("{ctx} filtered"));

            // Both induction backends over the damaged site: valid
            // embeddings, no panics.
            let hist = induce_histogram(&pages, &streams, num_symbols);
            assert_valid_embedding(&hist, &pages, &format!("{ctx} histogram"));
            let oracle = induce_interned(&pages, &streams, num_symbols);
            assert_valid_embedding(&oracle, &pages, &format!("{ctx} hirschberg"));
        }
    }
}

/// Both cores on one window pair: equal LCS length, valid traces.
fn check_cores_agree(a: &[Symbol], b: &[Symbol], ctx: &str) {
    let oracle = lcs_indices(a, b);
    let fast = lcs_indices_histogram(a, b);
    assert_eq!(fast.len(), oracle.len(), "{ctx}: LCS length diverged");
    for pairs in [&oracle, &fast] {
        for w in pairs.windows(2) {
            assert!(
                w[0].0 < w[1].0 && w[0].1 < w[1].1,
                "{ctx}: trace not increasing"
            );
        }
        for &(i, j) in pairs.iter() {
            assert_eq!(a[i], b[j], "{ctx}: trace pair mismatch at ({i}, {j})");
        }
    }
}
