//! Determinism golden test: the `tables123` and `table4` workloads must
//! produce byte-identical reports run twice in-process and through the
//! batch engine at 1, 2 and N threads, matching the goldens committed
//! under `tests/golden/`; and the per-site template cache must run
//! induction exactly once per site per batch run.

use std::path::PathBuf;

use tableseg_bench::{run_sites, run_sites_robust, table4_report, tables123_report};
use tableseg_sitegen::chaos::{apply_chaos, ChaosConfig};
use tableseg_sitegen::paper_sites;
use tableseg_sitegen::site::generate;
use tableseg_template::induction_count;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(name)
}

fn read_golden(name: &str) -> String {
    let path = golden_path(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()))
}

/// One test (not several) so the process-global induction counter deltas
/// are not interleaved by the parallel test harness within this binary.
#[test]
fn reports_are_deterministic_across_threads_and_match_goldens() {
    let specs = paper_sites::all();
    let n = tableseg::batch::default_threads().max(3);

    // table4 at 1, 2 and N threads, plus a repeat at 1 thread: all byte
    // identical. Each run must induce exactly one template per site.
    let mut reports = Vec::new();
    for threads in [1usize, 1, 2, n] {
        let before = induction_count();
        let outcome = run_sites(&specs, threads);
        let after = induction_count();
        assert_eq!(
            after - before,
            specs.len(),
            "template induction must run exactly once per site ({threads} threads)"
        );
        reports.push((threads, table4_report(&outcome.runs, false)));

        // The RT registry carries one row per site with solve time
        // accounted, at every thread count.
        let rows = outcome.timing.rows();
        assert_eq!(rows.len(), specs.len(), "one timing row per site");
        for (label, times) in &rows {
            assert!(
                times.get(tableseg::timing::Stage::Solve) > std::time::Duration::ZERO,
                "no solve time recorded for {label}"
            );
        }
    }
    let (_, first) = &reports[0];
    for (threads, report) in &reports[1..] {
        assert_eq!(report, first, "table4 report differs at {threads} threads");
    }
    assert_eq!(
        first,
        &read_golden("table4.txt"),
        "table4 report drifted from tests/golden/table4.txt \
         (regenerate with `cargo run -p tableseg-bench --bin table4 > tests/golden/table4.txt` \
         and review the diff)"
    );

    // tables123 twice in-process: byte identical and matching its golden.
    let a = tables123_report();
    let b = tables123_report();
    assert_eq!(a, b, "tables123 report not deterministic in-process");
    assert_eq!(
        a,
        read_golden("tables123.txt"),
        "tables123 report drifted from tests/golden/tables123.txt \
         (regenerate with `cargo run -p tableseg-bench --bin tables123 > tests/golden/tables123.txt`)"
    );
}

/// Differential: with every fault probability at zero, the chaos wrapper
/// is byte-identical to the plain generator on all twelve paper sites,
/// and the fallible batch path reproduces the same golden Table 4 report
/// at 1, 2 and N threads.
#[test]
fn robust_path_at_zero_chaos_matches_goldens() {
    let specs = paper_sites::all();
    let cfg = ChaosConfig::uniform(0.0, 0xC0DE);
    assert!(cfg.is_noop());

    for spec in &specs {
        let clean = generate(spec);
        let (wrapped, log) = apply_chaos(&clean, &cfg);
        assert!(log.is_empty(), "{}", spec.name);
        assert_eq!(
            wrapped, clean,
            "{}: chaos at p=0 must be the identity",
            spec.name
        );
    }

    let golden = read_golden("table4.txt");
    let n = tableseg::batch::default_threads().max(3);
    for threads in [1usize, 2, n] {
        let outcome = run_sites_robust(&specs, &cfg, threads);
        assert_eq!(
            outcome.report.failed, 0,
            "no page may fail on clean input ({threads} threads)"
        );
        assert!(outcome.fault_counts.iter().all(|&(_, c)| c == 0));
        assert_eq!(
            table4_report(&outcome.runs, false),
            golden,
            "robust path drifted from tests/golden/table4.txt at {threads} threads"
        );
    }
}
