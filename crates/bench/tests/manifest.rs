//! Manifest determinism goldens: redacted manifest renderings must be
//! byte-identical at 1, 2 and N threads and across two identical runs,
//! and the full (unredacted) manifest must reproduce the `--rt` timing
//! registry's per-stage totals exactly — span trees and registry rows
//! sum the same `StageTimes` integers, so equality is integer-exact,
//! not approximate.
//!
//! One test function (not several): the metrics enable flag is process
//! global, and the parallel test harness within a binary would otherwise
//! interleave enabled and disabled sections. Separate test *binaries*
//! run sequentially, so this file does not race `determinism.rs`.

use tableseg::obs;
use tableseg::timing::Stage;
use tableseg_bench::{run_sites, run_sites_robust};
use tableseg_sitegen::chaos::ChaosConfig;
use tableseg_sitegen::paper_sites;

#[test]
fn manifests_are_deterministic_and_reproduce_registry_totals() {
    let specs = paper_sites::all();
    let n = tableseg::batch::default_threads().max(3);

    // Disabled mode first: with collection off, a full batch run must
    // come back with every counter and histogram at zero.
    obs::set_enabled(false);
    let outcome = run_sites(&specs, 2);
    assert!(
        outcome.metrics.is_empty(),
        "disabled-mode run recorded metrics"
    );

    obs::set_enabled(true);

    // table4 workload at 1, 1 (repeat), 2 and N threads: all redacted
    // sink renderings byte-identical. The repeated 1-thread run covers
    // "two identical seeded runs"; the corpus generator is seeded and the
    // batch engine collects in job order, so nothing else may vary.
    let mut rendered: Vec<(usize, [String; 3])> = Vec::new();
    let mut outcomes = Vec::new();
    for threads in [1usize, 1, 2, n] {
        let outcome = run_sites(&specs, threads);
        let m = outcome.manifest("table4", threads);
        rendered.push((
            threads,
            [
                m.render_json(true),
                m.render_jsonl(true),
                m.render_prometheus(true),
            ],
        ));
        outcomes.push((threads, outcome));
    }
    let (_, first) = &rendered[0];
    for (threads, sinks) in &rendered[1..] {
        for (i, sink) in sinks.iter().enumerate() {
            assert_eq!(
                sink, &first[i],
                "redacted sink {i} differs at {threads} threads"
            );
        }
    }
    assert!(first[0].contains("\"schema\": \"tableseg.manifest/v1\""));
    assert!(first[0].contains("\"volatile\": {\"redacted\": true}"));

    // The full manifest's span tree reproduces the timing registry's
    // per-stage totals exactly, for every stage and solver substage, at
    // every thread count.
    for (threads, outcome) in &outcomes {
        let m = outcome.manifest("table4", *threads);
        for stage in Stage::ALL.into_iter().chain(Stage::SOLVE_SPLIT) {
            let registry_total: u128 = outcome
                .timing
                .rows()
                .iter()
                .map(|(_, times)| times.get(stage).as_nanos())
                .sum();
            assert_eq!(
                m.stage_total_nanos(stage.label()),
                registry_total,
                "span total != registry total for {} at {threads} threads",
                stage.label()
            );
        }
        // Counter sanity: the clean corpus is 24 pages over 12 sites.
        let pages = outcome
            .metrics
            .counters
            .iter()
            .find(|(label, _)| *label == "pages.processed")
            .map(|(_, v)| v);
        assert_eq!(pages, Some(24), "at {threads} threads");
    }

    // The fallible path under real chaos: same byte-identity bar, plus a
    // populated robustness section.
    let cfg = ChaosConfig::uniform(0.3, 0xC0DE);
    let mut robust: Vec<(usize, String)> = Vec::new();
    for threads in [1usize, 2, n] {
        let outcome = run_sites_robust(&specs, &cfg, threads);
        let m = outcome.manifest("chaossweep", threads);
        assert!(m.robustness.is_some());
        robust.push((threads, m.render_json(true)));
    }
    let (_, first_robust) = &robust[0];
    assert!(first_robust.contains("\"robustness\": {"));
    for (threads, json) in &robust[1..] {
        assert_eq!(
            json, first_robust,
            "robust manifest differs at {threads} threads"
        );
    }

    obs::set_enabled(false);
}
