//! The per-job metric recorder and the ambient enable switch.
//!
//! Each pipeline job (a site preparation, a page preparation, a solver
//! call) carries its own [`Recorder`]; the batch-engine assembly loops
//! merge them in deterministic job order, so totals are identical at any
//! thread count. When observability is disabled (the default), every
//! recorder is born off and [`Recorder::bump`]/[`Recorder::observe`]
//! reduce to a single predictable branch — the "zero-cost-when-disabled"
//! contract measured by `obsbench`.

use std::sync::atomic::{AtomicBool, Ordering};

use crate::metric::{Counter, CounterSet, Hist, HistogramSet};

/// The process-wide observability switch. Off by default; `obsbench` and
/// the `--manifest` CLI flags turn it on before running the pipeline.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns metric recording on or off for recorders created afterwards.
///
/// Existing recorders keep the state they were born with, so flipping the
/// switch mid-run never produces a half-recorded job.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether recorders are currently being created enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A per-job metrics collector: one [`CounterSet`] and one
/// [`HistogramSet`] behind an on/off flag.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Recorder {
    /// Whether this recorder records. Merging ignores the flag: merged
    /// data is kept even into a disabled recorder, so assembly code never
    /// has to check.
    on: bool,
    /// Counter totals.
    pub counters: CounterSet,
    /// Histograms.
    pub hists: HistogramSet,
}

impl Recorder {
    /// A recorder honouring the ambient [`set_enabled`] switch.
    pub fn new() -> Recorder {
        Recorder {
            on: enabled(),
            ..Recorder::default()
        }
    }

    /// A recorder that always records, regardless of the ambient switch
    /// (for tests and sinks that aggregate unconditionally).
    pub fn always_on() -> Recorder {
        Recorder {
            on: true,
            ..Recorder::default()
        }
    }

    /// Whether this recorder records.
    pub fn is_on(&self) -> bool {
        self.on
    }

    /// Adds `by` to a counter (no-op when disabled).
    #[inline]
    pub fn bump(&mut self, counter: Counter, by: u64) {
        if self.on {
            self.counters.add(counter, by);
        }
    }

    /// Adds 1 to a counter (no-op when disabled).
    #[inline]
    pub fn incr(&mut self, counter: Counter) {
        self.bump(counter, 1);
    }

    /// Records a histogram observation (no-op when disabled).
    #[inline]
    pub fn observe(&mut self, hist: Hist, value: u64) {
        if self.on {
            self.hists.observe(hist, value);
        }
    }

    /// Merges another recorder's data into this one.
    ///
    /// Always sums, even when `self` is disabled: a disabled parent can
    /// still aggregate enabled children (and vice versa), so the batch
    /// assembly loops stay branch-free.
    pub fn merge(&mut self, other: &Recorder) {
        self.counters.merge(&other.counters);
        self.hists.merge(&other.hists);
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_zero() && self.hists.iter().all(|(_, h)| h.count == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        // The satellite's disabled-mode no-op test: bump/observe on an
        // off recorder leave it bit-for-bit empty.
        let mut r = Recorder::default();
        assert!(!r.is_on());
        r.bump(Counter::WsatFlips, 1000);
        r.incr(Counter::PagesProcessed);
        r.observe(Hist::ExtractsPerPage, 42);
        assert!(r.is_empty());
        assert_eq!(r, Recorder::default());
    }

    #[test]
    fn enabled_recorder_records() {
        let mut r = Recorder::always_on();
        r.bump(Counter::WsatFlips, 1000);
        r.incr(Counter::PagesProcessed);
        r.observe(Hist::ExtractsPerPage, 42);
        assert_eq!(r.counters.get(Counter::WsatFlips), 1000);
        assert_eq!(r.counters.get(Counter::PagesProcessed), 1);
        assert_eq!(r.hists.get(Hist::ExtractsPerPage).count, 1);
        assert!(!r.is_empty());
    }

    #[test]
    fn merge_ignores_the_flag() {
        let mut child = Recorder::always_on();
        child.incr(Counter::SitesProcessed);
        let mut parent = Recorder::default();
        parent.merge(&child);
        assert_eq!(parent.counters.get(Counter::SitesProcessed), 1);
    }

    #[test]
    fn merge_is_order_insensitive() {
        let mut a = Recorder::always_on();
        a.bump(Counter::EmIterations, 3);
        a.observe(Hist::EmIterationsPerSolve, 3);
        let mut b = Recorder::always_on();
        b.bump(Counter::EmIterations, 5);
        b.observe(Hist::EmIterationsPerSolve, 5);

        let mut ab = Recorder::default();
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = Recorder::default();
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counters.get(Counter::EmIterations), 8);
        assert_eq!(ab.hists.get(Hist::EmIterationsPerSolve).sum, 8);
    }
}
