//! Run manifests: one queryable record of "what happened on this run".
//!
//! A [`Manifest`] bundles the run configuration, seeds, merged metrics,
//! an optional robustness rollup and the span tree, and renders to three
//! sinks: a summary JSON document, a JSON-lines event log and a
//! Prometheus text exposition. All JSON is hand-rolled (the workspace
//! `serde` is an offline no-op shim) with fields emitted in a fixed
//! order, so two identical runs produce byte-identical documents.
//!
//! # Determinism and the volatile section
//!
//! Wall-clock durations and build metadata can never be byte-identical
//! across runs, so every volatile value — span durations, git-describe,
//! thread count — is isolated in an explicitly marked `volatile` section
//! (and in the spans' `nanos` fields). Rendering with `redact = true`
//! zeroes all of them, leaving only data that is fully determined by the
//! corpus, configuration and seeds; the byte-identity goldens compare
//! redacted renderings at 1, 2 and N threads. Setting the environment
//! variable [`DETERMINISTIC_ENV`]`=1` makes the CLI `--manifest` flags
//! write the redacted form.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::metric::{bucket_upper, Histogram, NUM_BUCKETS};
use crate::recorder::Recorder;
use crate::span::{SpanKind, SpanNode};

/// The manifest schema version. Bump the `/vN` suffix on any breaking
/// change to field names, nesting or event shapes (see OBSERVABILITY.md).
pub const SCHEMA: &str = "tableseg.manifest/v1";

/// Environment variable: when set to `1`, CLI `--manifest` output is
/// written in redacted (deterministic) form.
pub const DETERMINISTIC_ENV: &str = "TABLESEG_MANIFEST_DETERMINISTIC";

/// `true` if [`DETERMINISTIC_ENV`] requests redacted manifests.
pub fn deterministic_requested() -> bool {
    std::env::var(DETERMINISTIC_ENV)
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// `git describe --always --dirty` of the working tree, or `"unknown"`
/// when git is unavailable. Volatile: never part of redacted output.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The per-page outcome rollup mirrored from the core
/// `RobustnessReport` (duplicated here so `tableseg-obs` stays a leaf
/// crate with no pipeline dependencies).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RobustnessRollup {
    /// Pages attempted.
    pub pages: u64,
    /// Pages with a clean outcome.
    pub ok: u64,
    /// Pages processed with warnings.
    pub degraded: u64,
    /// Pages that failed outright.
    pub failed: u64,
    /// Warning counts by label, in deterministic label order.
    pub warnings: Vec<(String, u64)>,
    /// Failure counts by pipeline stage, in deterministic label order.
    pub failures_by_stage: Vec<(String, u64)>,
}

/// The volatile (non-deterministic) part of a manifest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Volatile {
    /// `git describe` of the build tree.
    pub git_describe: String,
    /// Worker threads the run used.
    pub threads: usize,
}

/// A complete run manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// The tool that produced the run (`table4`, `chaossweep`, ...).
    pub tool: String,
    /// Configuration as ordered key/value pairs, exactly as resolved by
    /// the tool (flag defaults included).
    pub config: Vec<(String, String)>,
    /// Seeds the run consumed, in consumption order.
    pub seeds: Vec<u64>,
    /// Merged counters and histograms.
    pub metrics: Recorder,
    /// Robustness rollup, when the run used the fallible path.
    pub robustness: Option<RobustnessRollup>,
    /// The span tree (root kind [`SpanKind::Run`]).
    pub root: SpanNode,
    /// Build and machine facts excluded from redacted renderings.
    pub volatile: Volatile,
}

impl Manifest {
    /// A manifest skeleton for `tool` with an empty run span.
    pub fn new(tool: impl Into<String>) -> Manifest {
        let tool = tool.into();
        Manifest {
            root: SpanNode::new(SpanKind::Run, tool.clone(), 0),
            tool,
            config: Vec::new(),
            seeds: Vec::new(),
            metrics: Recorder::default(),
            robustness: None,
            volatile: Volatile {
                git_describe: git_describe(),
                threads: 0,
            },
        }
    }

    /// Adds one configuration pair (builder style).
    pub fn with_config(mut self, key: &str, value: impl ToString) -> Manifest {
        self.config.push((key.to_string(), value.to_string()));
        self
    }

    /// Total nanoseconds attributed to stage/substage spans named
    /// `label`, summed over the whole tree. For a tree assembled from the
    /// pipeline's `StageTimes` this equals the `--rt` registry total for
    /// the same label exactly (both sum the same integers).
    pub fn stage_total_nanos(&self, label: &str) -> u128 {
        let mut total = 0u128;
        self.root.walk(&mut |_, node| {
            if matches!(node.kind, SpanKind::Stage | SpanKind::SolverSubstage) && node.name == label
            {
                total += node.nanos;
            }
        });
        total
    }

    /// `(label, nanos)` totals for every distinct stage/substage label,
    /// sorted by label.
    pub fn stage_totals(&self) -> Vec<(String, u128)> {
        let mut labels: Vec<&str> = Vec::new();
        self.root.walk(&mut |_, node| {
            if matches!(node.kind, SpanKind::Stage | SpanKind::SolverSubstage) {
                labels.push(node.name.as_str());
            }
        });
        labels.sort_unstable();
        labels.dedup();
        labels
            .into_iter()
            .map(|l| (l.to_string(), self.stage_total_nanos(l)))
            .collect()
    }

    /// The summary-JSON sink.
    ///
    /// With `redact = true` every volatile value is zeroed or replaced by
    /// `"redacted"`, producing a document fully determined by corpus,
    /// configuration and seeds — the form compared by the byte-identity
    /// goldens.
    pub fn render_json(&self, redact: bool) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", json_str(SCHEMA));
        let _ = writeln!(out, "  \"tool\": {},", json_str(&self.tool));
        let _ = writeln!(out, "  \"config\": {{");
        for (i, (k, v)) in self.config.iter().enumerate() {
            let comma = if i + 1 < self.config.len() { "," } else { "" };
            let _ = writeln!(out, "    {}: {}{comma}", json_str(k), json_str(v));
        }
        out.push_str("  },\n");
        let seeds: Vec<String> = self.seeds.iter().map(u64::to_string).collect();
        let _ = writeln!(out, "  \"seeds\": [{}],", seeds.join(", "));

        out.push_str("  \"counters\": {\n");
        let counters: Vec<(&str, u64)> = self.metrics.counters.iter().collect();
        for (i, (label, total)) in counters.iter().enumerate() {
            let comma = if i + 1 < counters.len() { "," } else { "" };
            let _ = writeln!(out, "    {}: {total}{comma}", json_str(label));
        }
        out.push_str("  },\n");

        out.push_str("  \"histograms\": {\n");
        let hists: Vec<(&str, &Histogram)> = self.metrics.hists.iter().collect();
        for (i, (label, h)) in hists.iter().enumerate() {
            let comma = if i + 1 < hists.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {}: {{\"count\": {}, \"sum\": {}, \"buckets\": {}}}{comma}",
                json_str(label),
                h.count,
                h.sum,
                buckets_json(h),
            );
        }
        out.push_str("  },\n");

        match &self.robustness {
            Some(r) => {
                out.push_str("  \"robustness\": {\n");
                let _ = writeln!(out, "    \"pages\": {},", r.pages);
                let _ = writeln!(out, "    \"ok\": {},", r.ok);
                let _ = writeln!(out, "    \"degraded\": {},", r.degraded);
                let _ = writeln!(out, "    \"failed\": {},", r.failed);
                let _ = writeln!(out, "    \"warnings\": {},", pairs_json(&r.warnings));
                let _ = writeln!(
                    out,
                    "    \"failures_by_stage\": {}",
                    pairs_json(&r.failures_by_stage)
                );
                out.push_str("  },\n");
            }
            None => out.push_str("  \"robustness\": null,\n"),
        }

        out.push_str("  \"spans\": ");
        let root = if redact {
            self.root.redacted()
        } else {
            self.root.clone()
        };
        span_json(&root, 1, &mut out);
        out.push_str(",\n");

        if redact {
            out.push_str("  \"volatile\": {\"redacted\": true}\n");
        } else {
            out.push_str("  \"volatile\": {\n");
            let _ = writeln!(
                out,
                "    \"git_describe\": {},",
                json_str(&self.volatile.git_describe)
            );
            let _ = writeln!(out, "    \"threads\": {}", self.volatile.threads);
            out.push_str("  }\n");
        }
        out.push_str("}\n");
        out
    }

    /// The JSON-lines sink: one event object per line — a header, every
    /// span in preorder, every counter, every histogram, the robustness
    /// rollup (if any) and a trailing `end` event.
    pub fn render_jsonl(&self, redact: bool) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"event\": \"manifest\", \"schema\": {}, \"tool\": {}}}",
            json_str(SCHEMA),
            json_str(&self.tool)
        );
        let root = if redact {
            self.root.redacted()
        } else {
            self.root.clone()
        };
        root.walk(&mut |depth, node| {
            let _ = writeln!(
                out,
                "{{\"event\": \"span\", \"kind\": {}, \"name\": {}, \"depth\": {depth}, \"nanos\": {}}}",
                json_str(node.kind.label()),
                json_str(&node.name),
                node.nanos
            );
        });
        for (label, total) in self.metrics.counters.iter() {
            let _ = writeln!(
                out,
                "{{\"event\": \"counter\", \"name\": {}, \"value\": {total}}}",
                json_str(label)
            );
        }
        for (label, h) in self.metrics.hists.iter() {
            let _ = writeln!(
                out,
                "{{\"event\": \"hist\", \"name\": {}, \"count\": {}, \"sum\": {}, \"buckets\": {}}}",
                json_str(label),
                h.count,
                h.sum,
                buckets_json(h)
            );
        }
        if let Some(r) = &self.robustness {
            let _ = writeln!(
                out,
                "{{\"event\": \"robustness\", \"pages\": {}, \"ok\": {}, \"degraded\": {}, \"failed\": {}, \"warnings\": {}, \"failures_by_stage\": {}}}",
                r.pages,
                r.ok,
                r.degraded,
                r.failed,
                pairs_json(&r.warnings),
                pairs_json(&r.failures_by_stage)
            );
        }
        let _ = writeln!(out, "{{\"event\": \"end\"}}");
        out
    }

    /// The Prometheus text-exposition sink: counters as
    /// `tableseg_<name>_total`, histograms as cumulative
    /// `_bucket{{le=...}}` series, and per-stage seconds as a gauge.
    ///
    /// With `redact = true` the stage-seconds gauges (the only volatile
    /// series) are zeroed; the series set itself is deterministic.
    pub fn render_prometheus(&self, redact: bool) -> String {
        let mut out = String::new();
        for (label, total) in self.metrics.counters.iter() {
            let name = format!("tableseg_{}_total", metric_name(label));
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {total}");
        }
        for (label, h) in self.metrics.hists.iter() {
            let name = format!("tableseg_{}", metric_name(label));
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for b in 0..NUM_BUCKETS {
                let n = h.bucket(b);
                if n == 0 {
                    continue;
                }
                cumulative += n;
                let _ = writeln!(
                    out,
                    "{name}_bucket{{le=\"{}\"}} {cumulative}",
                    bucket_upper(b)
                );
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{name}_sum {}", h.sum);
            let _ = writeln!(out, "{name}_count {}", h.count);
        }
        let stages = self.stage_totals();
        if !stages.is_empty() {
            out.push_str("# TYPE tableseg_stage_seconds gauge\n");
            for (label, nanos) in stages {
                let secs = if redact { 0.0 } else { nanos as f64 / 1e9 };
                let _ = writeln!(out, "tableseg_stage_seconds{{stage=\"{label}\"}} {secs:.9}");
            }
        }
        out
    }

    /// The human sink: the span tree followed by non-zero counters and
    /// histogram summaries, in the style of the `--rt` tables.
    pub fn render_tree(&self) -> String {
        let mut out = self.root.render_tree();
        let counters: Vec<(&str, u64)> = self
            .metrics
            .counters
            .iter()
            .filter(|&(_, v)| v > 0)
            .collect();
        if !counters.is_empty() {
            out.push_str("\ncounters:\n");
            for (label, total) in counters {
                let _ = writeln!(out, "  {label:<32} {total}");
            }
        }
        let hists: Vec<(&str, &Histogram)> = self
            .metrics
            .hists
            .iter()
            .filter(|&(_, h)| h.count > 0)
            .collect();
        if !hists.is_empty() {
            out.push_str("\nhistograms:\n");
            for (label, h) in hists {
                let mean = h.sum as f64 / h.count as f64;
                let _ = writeln!(out, "  {label:<32} count {} mean {mean:.2}", h.count);
            }
        }
        out
    }

    /// Writes all three sinks next to each other: the summary JSON at
    /// `path`, the event log at `path` with an extra `.jsonl` suffix and
    /// the Prometheus text with an extra `.prom` suffix. Returns the
    /// paths written.
    pub fn write_files(&self, path: &Path, redact: bool) -> io::Result<Vec<PathBuf>> {
        let jsonl = sibling(path, "jsonl");
        let prom = sibling(path, "prom");
        fs::write(path, self.render_json(redact))?;
        fs::write(&jsonl, self.render_jsonl(redact))?;
        fs::write(&prom, self.render_prometheus(redact))?;
        Ok(vec![path.to_path_buf(), jsonl, prom])
    }
}

/// `path` with `ext` appended after the existing extension
/// (`out.json` → `out.json.jsonl`).
fn sibling(path: &Path, ext: &str) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".");
    name.push(ext);
    PathBuf::from(name)
}

/// A JSON string literal with the characters JSON requires escaped.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Non-empty buckets as `[[bucket, count], ...]`.
fn buckets_json(h: &Histogram) -> String {
    let parts: Vec<String> = h
        .nonzero_buckets()
        .into_iter()
        .map(|(b, n)| format!("[{b}, {n}]"))
        .collect();
    format!("[{}]", parts.join(", "))
}

/// Label/count pairs as `[["label", count], ...]`.
fn pairs_json(pairs: &[(String, u64)]) -> String {
    let parts: Vec<String> = pairs
        .iter()
        .map(|(label, n)| format!("[{}, {n}]", json_str(label)))
        .collect();
    format!("[{}]", parts.join(", "))
}

/// `label` with non-alphanumeric characters mapped to `_` (Prometheus
/// metric-name charset).
fn metric_name(label: &str) -> String {
    label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn span_json(node: &SpanNode, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let _ = write!(
        out,
        "{{\"kind\": {}, \"name\": {}, \"nanos\": {}, \"children\": [",
        json_str(node.kind.label()),
        json_str(&node.name),
        node.nanos
    );
    if node.children.is_empty() {
        out.push_str("]}");
        return;
    }
    for (i, child) in node.children.iter().enumerate() {
        out.push('\n');
        out.push_str(&pad);
        out.push_str("  ");
        span_json(child, indent + 1, out);
        if i + 1 < node.children.len() {
            out.push(',');
        }
    }
    out.push('\n');
    out.push_str(&pad);
    out.push_str("]}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::{Counter, Hist};

    fn manifest() -> Manifest {
        let mut m = Manifest::new("test-tool")
            .with_config("threads", 4)
            .with_config("corpus", "12-site");
        m.seeds = vec![7, 11];
        m.metrics = Recorder::always_on();
        m.metrics.bump(Counter::PagesProcessed, 117);
        m.metrics.bump(Counter::WsatFlips, 40_000);
        m.metrics.observe(Hist::ExtractsPerPage, 0);
        m.metrics.observe(Hist::ExtractsPerPage, u64::MAX);
        m.robustness = Some(RobustnessRollup {
            pages: 117,
            ok: 110,
            degraded: 5,
            failed: 2,
            warnings: vec![("tokenizer.recovered".to_string(), 5)],
            failures_by_stage: vec![("solve".to_string(), 2)],
        });
        m.root = SpanNode::new(SpanKind::Run, "test-tool", 1000).with_child(
            SpanNode::new(SpanKind::Site, "site-a", 900).with_child(
                SpanNode::new(SpanKind::Stage, "solve", 800).with_child(SpanNode::new(
                    SpanKind::SolverSubstage,
                    "solve.csp",
                    700,
                )),
            ),
        );
        m.volatile = Volatile {
            git_describe: "v1-dirty".to_string(),
            threads: 4,
        };
        m
    }

    #[test]
    fn json_escapes() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn summary_json_has_schema_and_sections() {
        let j = manifest().render_json(false);
        assert!(j.contains("\"schema\": \"tableseg.manifest/v1\""));
        assert!(j.contains("\"tool\": \"test-tool\""));
        assert!(j.contains("\"pages.processed\": 117"));
        assert!(j.contains("\"csp.wsat.flips\": 40000"));
        assert!(j.contains("\"seeds\": [7, 11]"));
        assert!(j.contains("\"git_describe\": \"v1-dirty\""));
        assert!(j.contains("\"failures_by_stage\": [[\"solve\", 2]]"));
        // Extreme-value buckets survive the round trip.
        assert!(j.contains(&format!("[[0, 1], [{}, 1]]", NUM_BUCKETS - 1)));
    }

    #[test]
    fn redacted_json_hides_volatile_data() {
        let j = manifest().render_json(true);
        assert!(j.contains("\"volatile\": {\"redacted\": true}"));
        assert!(!j.contains("v1-dirty"));
        assert!(j.contains("\"nanos\": 0"));
        assert!(!j.contains("\"nanos\": 700"));
        // Redaction is stable: rendering twice is byte-identical.
        assert_eq!(j, manifest().render_json(true));
    }

    #[test]
    fn jsonl_emits_one_event_per_line() {
        let log = manifest().render_jsonl(false);
        let lines: Vec<&str> = log.lines().collect();
        assert!(lines[0].contains("\"event\": \"manifest\""));
        assert!(lines.last().unwrap().contains("\"event\": \"end\""));
        // header + 4 spans + counters + hists + robustness + end.
        assert_eq!(
            lines.len(),
            1 + 4 + Counter::ALL.len() + Hist::ALL.len() + 1 + 1
        );
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let prom = manifest().render_prometheus(false);
        assert!(prom.contains("tableseg_pages_processed_total 117"));
        assert!(prom.contains("# TYPE tableseg_extracts_per_page histogram"));
        assert!(prom.contains("tableseg_extracts_per_page_bucket{le=\"0\"} 1"));
        assert!(prom.contains(&format!(
            "tableseg_extracts_per_page_bucket{{le=\"{}\"}} 2",
            u64::MAX
        )));
        assert!(prom.contains("tableseg_extracts_per_page_bucket{le=\"+Inf\"} 2"));
        assert!(prom.contains("tableseg_extracts_per_page_count 2"));
        assert!(prom.contains("tableseg_stage_seconds{stage=\"solve\"}"));
    }

    #[test]
    fn stage_totals_sum_stage_and_substage_spans() {
        let m = manifest();
        assert_eq!(m.stage_total_nanos("solve"), 800);
        assert_eq!(m.stage_total_nanos("solve.csp"), 700);
        // Run/site spans are not stages.
        assert_eq!(m.stage_total_nanos("site-a"), 0);
        let totals = m.stage_totals();
        assert_eq!(
            totals,
            vec![("solve".to_string(), 800), ("solve.csp".to_string(), 700)]
        );
    }

    #[test]
    fn tree_sink_lists_counters() {
        let t = manifest().render_tree();
        assert!(t.contains("solve.csp"));
        assert!(t.contains("pages.processed"));
        assert!(t.contains("counters:"));
    }

    #[test]
    fn write_files_emits_three_sinks() {
        let dir = std::env::temp_dir().join("tableseg-obs-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        let written = manifest().write_files(&path, true).unwrap();
        assert_eq!(written.len(), 3);
        assert!(written[1].to_string_lossy().ends_with("out.json.jsonl"));
        assert!(written[2].to_string_lossy().ends_with("out.json.prom"));
        for p in &written {
            assert!(fs::metadata(p).unwrap().len() > 0);
            let _ = fs::remove_file(p);
        }
    }
}
