//! Typed counters and log2-bucket histograms.
//!
//! Every metric the pipeline can emit is a variant of a closed enum —
//! [`Counter`] for monotonic counts, [`Hist`] for value distributions —
//! so a metric set is a fixed-size array, merging is element-wise
//! addition, and the manifest's metric section has a stable, enumerable
//! shape at any thread count.

/// A monotonically increasing count of pipeline events.
///
/// Names follow the `area.event` scheme documented in `OBSERVABILITY.md`;
/// [`Counter::label`] is the canonical name used by every sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// List pages that entered the per-page front end.
    PagesProcessed,
    /// Pages whose outcome was clean (robust runs only).
    PagesOk,
    /// Pages processed with warnings (robust runs only).
    PagesDegraded,
    /// Pages that could not be processed (robust runs only).
    PagesFailed,
    /// Per-page warnings of any class (robust runs only).
    PageWarnings,
    /// Sites whose per-site front end (template induction) ran.
    SitesProcessed,
    /// Template inductions performed (once per site when the cache works).
    TemplateInductions,
    /// Per-page preparations served by a cached [`SiteTemplate`] instead
    /// of a fresh induction.
    ///
    /// [`SiteTemplate`]: https://docs.rs/tableseg
    TemplateCacheHits,
    /// Pages where the induced template was unusable and the whole page
    /// was used as the table slot (the paper's notes `a`/`b`).
    WholePageFallbacks,
    /// LCS folds performed by template induction (pages beyond the base
    /// page, summed over sites).
    TemplateMergeFolds,
    /// Candidate anchors dropped during induction: fold attrition plus
    /// the run-stability pass.
    TemplateAnchorsDropped,
    /// Histogram-LCS windows that fell back to quadratic Hirschberg
    /// (small or repeat-heavy windows; zero on clean templated sites).
    TemplateLcsFallbacks,
    /// Extracts kept in observation tables.
    ExtractsKept,
    /// Extracts dropped by the filtering rules.
    ExtractsSkipped,
    /// Total extract ↔ detail-page matches (the sum of |D_i| over all
    /// kept extracts — every kept extract has at least one).
    ExtractsMatched,
    /// WSAT(OIP) variable flips across all solves.
    WsatFlips,
    /// WSAT(OIP) restarts (tries) across all solves.
    WsatTries,
    /// CSP solves that had to relax their constraints (notes `c`/`d`).
    CspRelaxed,
    /// EM iterations across all probabilistic solves.
    EmIterations,
    /// Solver failures contained by the fallible path (robust runs only).
    SolveFailures,
    /// Faults injected by the chaos layer (chaos runs only).
    ChaosFaults,
    /// Pages scanned by the zero-copy front end (list + detail).
    FrontendPages,
    /// HTML bytes scanned by the zero-copy front end.
    FrontendBytes,
    /// Segmentation requests accepted by `tablesegd` (serve runs only).
    ServeRequests,
    /// Requests served from a warm site-state cache entry (fingerprints
    /// matched; the induced template and page results were reused).
    ServeCacheHits,
    /// Requests that found no usable cache entry and ran a full site
    /// build (cold misses and rebuild fallbacks).
    ServeCacheMisses,
    /// Requests whose site state was incrementally refreshed: the cached
    /// template was re-anchored on the changed pages without re-running
    /// induction.
    ServeCacheRefreshes,
    /// Connections rejected by admission control (429 + Retry-After).
    ServeRejected,
    /// Explicit cache invalidations accepted on `/invalidate`.
    ServeInvalidations,
    /// Requests that hit their deadline; remaining pages were cancelled
    /// through the fallible pipeline and reported as failed.
    ServeDeadlineExceeded,
    /// Connected components produced by CSP instance reduction, summed
    /// over solves (zero when propagation alone fixes every variable).
    SolveComponents,
    /// Variables eliminated before search by instance reduction: forced
    /// by propagation or free (touching no active constraint).
    SolvePrunedVars,
    /// Warm-started WSAT solves whose best try was a warm seed (the
    /// previous relaxation rung's assignment), not a cold restart.
    SolveWarmStartHits,
    /// Pages run through the table-region detection stage.
    DetectPages,
    /// Table regions reported by detection (one per pass-through page).
    DetectRegions,
    /// Non-table regions (navigation bars, ad blocks, footers) detection
    /// classified and withheld from segmentation.
    DetectNonTable,
    /// Pages where detection found at most one table region and fed the
    /// whole page through unchanged (the strict no-op pass-through).
    DetectPassThrough,
    /// Parent record slots re-segmented by the recursive nested pass.
    NestedParents,
    /// Sub-record groups emitted by the recursive nested pass, summed
    /// over parents.
    NestedSubRecords,
}

impl Counter {
    /// Every counter, in manifest order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::PagesProcessed,
        Counter::PagesOk,
        Counter::PagesDegraded,
        Counter::PagesFailed,
        Counter::PageWarnings,
        Counter::SitesProcessed,
        Counter::TemplateInductions,
        Counter::TemplateCacheHits,
        Counter::WholePageFallbacks,
        Counter::TemplateMergeFolds,
        Counter::TemplateAnchorsDropped,
        Counter::TemplateLcsFallbacks,
        Counter::ExtractsKept,
        Counter::ExtractsSkipped,
        Counter::ExtractsMatched,
        Counter::WsatFlips,
        Counter::WsatTries,
        Counter::CspRelaxed,
        Counter::EmIterations,
        Counter::SolveFailures,
        Counter::ChaosFaults,
        Counter::FrontendPages,
        Counter::FrontendBytes,
        Counter::ServeRequests,
        Counter::ServeCacheHits,
        Counter::ServeCacheMisses,
        Counter::ServeCacheRefreshes,
        Counter::ServeRejected,
        Counter::ServeInvalidations,
        Counter::ServeDeadlineExceeded,
        Counter::SolveComponents,
        Counter::SolvePrunedVars,
        Counter::SolveWarmStartHits,
        Counter::DetectPages,
        Counter::DetectRegions,
        Counter::DetectNonTable,
        Counter::DetectPassThrough,
        Counter::NestedParents,
        Counter::NestedSubRecords,
    ];

    /// Number of counter variants. [`Counter::ALL`] has exactly this
    /// length by construction, and the private `Counter::index` is an
    /// exhaustive match — adding a variant without updating both is a
    /// compile error here and a failure of
    /// `all_assigns_every_variant_its_index` below.
    pub const COUNT: usize = 39;

    /// The canonical `area.event` metric name.
    pub fn label(self) -> &'static str {
        match self {
            Counter::PagesProcessed => "pages.processed",
            Counter::PagesOk => "pages.ok",
            Counter::PagesDegraded => "pages.degraded",
            Counter::PagesFailed => "pages.failed",
            Counter::PageWarnings => "pages.warnings",
            Counter::SitesProcessed => "sites.processed",
            Counter::TemplateInductions => "template.inductions",
            Counter::TemplateCacheHits => "template.cache_hits",
            Counter::WholePageFallbacks => "template.whole_page_fallbacks",
            Counter::TemplateMergeFolds => "template.merge_folds",
            Counter::TemplateAnchorsDropped => "template.anchors_dropped",
            Counter::TemplateLcsFallbacks => "template.lcs_fallbacks",
            Counter::ExtractsKept => "extracts.kept",
            Counter::ExtractsSkipped => "extracts.skipped",
            Counter::ExtractsMatched => "extracts.matched",
            Counter::WsatFlips => "csp.wsat.flips",
            Counter::WsatTries => "csp.wsat.tries",
            Counter::CspRelaxed => "csp.relaxed",
            Counter::EmIterations => "prob.em.iterations",
            Counter::SolveFailures => "solve.failures",
            Counter::ChaosFaults => "chaos.faults",
            Counter::FrontendPages => "frontend.pages",
            Counter::FrontendBytes => "frontend.bytes",
            Counter::ServeRequests => "serve.requests",
            Counter::ServeCacheHits => "serve.cache_hits",
            Counter::ServeCacheMisses => "serve.cache_misses",
            Counter::ServeCacheRefreshes => "serve.cache_refreshes",
            Counter::ServeRejected => "serve.rejected",
            Counter::ServeInvalidations => "serve.invalidations",
            Counter::ServeDeadlineExceeded => "serve.deadline_exceeded",
            Counter::SolveComponents => "solve.components",
            Counter::SolvePrunedVars => "solve.pruned_vars",
            Counter::SolveWarmStartHits => "solve.warm_start_hits",
            Counter::DetectPages => "detect.pages",
            Counter::DetectRegions => "detect.regions",
            Counter::DetectNonTable => "detect.non_table",
            Counter::DetectPassThrough => "detect.pass_through",
            Counter::NestedParents => "nested.parents",
            Counter::NestedSubRecords => "nested.sub_records",
        }
    }

    /// This counter's slot in [`Counter::ALL`]. An exhaustive match
    /// (replacing the old position-scan over `ALL`, which silently
    /// tolerated drift): the compiler forces an arm for every new
    /// variant, and the metric tests force `ALL` to agree with it.
    const fn index(self) -> usize {
        match self {
            Counter::PagesProcessed => 0,
            Counter::PagesOk => 1,
            Counter::PagesDegraded => 2,
            Counter::PagesFailed => 3,
            Counter::PageWarnings => 4,
            Counter::SitesProcessed => 5,
            Counter::TemplateInductions => 6,
            Counter::TemplateCacheHits => 7,
            Counter::WholePageFallbacks => 8,
            Counter::TemplateMergeFolds => 9,
            Counter::TemplateAnchorsDropped => 10,
            Counter::TemplateLcsFallbacks => 11,
            Counter::ExtractsKept => 12,
            Counter::ExtractsSkipped => 13,
            Counter::ExtractsMatched => 14,
            Counter::WsatFlips => 15,
            Counter::WsatTries => 16,
            Counter::CspRelaxed => 17,
            Counter::EmIterations => 18,
            Counter::SolveFailures => 19,
            Counter::ChaosFaults => 20,
            Counter::FrontendPages => 21,
            Counter::FrontendBytes => 22,
            Counter::ServeRequests => 23,
            Counter::ServeCacheHits => 24,
            Counter::ServeCacheMisses => 25,
            Counter::ServeCacheRefreshes => 26,
            Counter::ServeRejected => 27,
            Counter::ServeInvalidations => 28,
            Counter::ServeDeadlineExceeded => 29,
            Counter::SolveComponents => 30,
            Counter::SolvePrunedVars => 31,
            Counter::SolveWarmStartHits => 32,
            Counter::DetectPages => 33,
            Counter::DetectRegions => 34,
            Counter::DetectNonTable => 35,
            Counter::DetectPassThrough => 36,
            Counter::NestedParents => 37,
            Counter::NestedSubRecords => 38,
        }
    }
}

/// A fixed-size set holding one total per [`Counter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSet {
    totals: [u64; Counter::ALL.len()],
}

impl Default for CounterSet {
    fn default() -> CounterSet {
        CounterSet {
            totals: [0; Counter::ALL.len()],
        }
    }
}

impl CounterSet {
    /// All counters at zero.
    pub fn new() -> CounterSet {
        CounterSet::default()
    }

    /// Adds `by` to one counter (saturating — counters never wrap).
    #[inline]
    pub fn add(&mut self, counter: Counter, by: u64) {
        let slot = &mut self.totals[counter.index()];
        *slot = slot.saturating_add(by);
    }

    /// The total recorded for one counter.
    #[inline]
    pub fn get(&self, counter: Counter) -> u64 {
        self.totals[counter.index()]
    }

    /// Element-wise sum of another set into this one.
    pub fn merge(&mut self, other: &CounterSet) {
        for (a, b) in self.totals.iter_mut().zip(other.totals.iter()) {
            *a = a.saturating_add(*b);
        }
    }

    /// `true` if every counter is zero.
    pub fn is_zero(&self) -> bool {
        self.totals.iter().all(|&v| v == 0)
    }

    /// Iterates `(label, total)` in [`Counter::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        Counter::ALL.iter().map(|&c| (c.label(), self.get(c)))
    }
}

/// A value distribution tracked by the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Hist {
    /// Kept extracts per prepared page.
    ExtractsPerPage,
    /// Detail pages each kept extract was observed on (|D_i|).
    DetailPagesPerExtract,
    /// Ground-truth records per prepared page (`num_records`).
    RecordsPerPage,
    /// WSAT flips per CSP solve.
    WsatFlipsPerSolve,
    /// EM iterations per probabilistic solve.
    EmIterationsPerSolve,
    /// HTML bytes per page scanned by the zero-copy front end.
    FrontendPageBytes,
    /// Wall-clock microseconds per served segmentation request. Volatile:
    /// recorded only into `tablesegd`'s global recorder (the `/metrics`
    /// sink), never into the deterministic per-request manifests.
    ServeRequestMicros,
    /// Target pages per served segmentation request.
    ServePagesPerRequest,
}

impl Hist {
    /// Every histogram, in manifest order.
    pub const ALL: [Hist; Hist::COUNT] = [
        Hist::ExtractsPerPage,
        Hist::DetailPagesPerExtract,
        Hist::RecordsPerPage,
        Hist::WsatFlipsPerSolve,
        Hist::EmIterationsPerSolve,
        Hist::FrontendPageBytes,
        Hist::ServeRequestMicros,
        Hist::ServePagesPerRequest,
    ];

    /// Number of histogram variants (see [`Counter::COUNT`]).
    pub const COUNT: usize = 8;

    /// The canonical metric name.
    pub fn label(self) -> &'static str {
        match self {
            Hist::ExtractsPerPage => "extracts_per_page",
            Hist::DetailPagesPerExtract => "detail_pages_per_extract",
            Hist::RecordsPerPage => "records_per_page",
            Hist::WsatFlipsPerSolve => "wsat_flips_per_solve",
            Hist::EmIterationsPerSolve => "em_iterations_per_solve",
            Hist::FrontendPageBytes => "frontend_page_bytes",
            Hist::ServeRequestMicros => "serve_request_micros",
            Hist::ServePagesPerRequest => "serve_pages_per_request",
        }
    }

    /// This histogram's slot in [`Hist::ALL`] (exhaustive, like
    /// [`Counter::index`]).
    const fn index(self) -> usize {
        match self {
            Hist::ExtractsPerPage => 0,
            Hist::DetailPagesPerExtract => 1,
            Hist::RecordsPerPage => 2,
            Hist::WsatFlipsPerSolve => 3,
            Hist::EmIterationsPerSolve => 4,
            Hist::FrontendPageBytes => 5,
            Hist::ServeRequestMicros => 6,
            Hist::ServePagesPerRequest => 7,
        }
    }
}

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `b ≥ 1`
/// holds values `v` with `v.ilog2() == b - 1`, i.e. `2^(b-1) ..= 2^b - 1`.
/// `u64::MAX` (ilog2 = 63) lands in the last bucket, 64.
pub const NUM_BUCKETS: usize = 65;

/// The log2 bucket index of a value.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        1 + value.ilog2() as usize
    }
}

/// The inclusive upper bound of a bucket (`u64::MAX` for the last).
pub fn bucket_upper(bucket: usize) -> u64 {
    match bucket {
        0 => 0,
        64 => u64::MAX,
        b => (1u64 << b) - 1,
    }
}

/// A log2-bucket histogram: counts per power-of-two value range, plus the
/// exact count and sum for mean computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values (`u128`: 2^64 observations of
    /// `u64::MAX` cannot overflow it).
    pub sum: u128,
    buckets: [u64; NUM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            buckets: [0; NUM_BUCKETS],
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum += u128::from(value);
        self.buckets[bucket_of(value)] += 1;
    }

    /// The count in one bucket.
    pub fn bucket(&self, bucket: usize) -> u64 {
        self.buckets[bucket]
    }

    /// Element-wise sum of another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// `(bucket, count)` for every non-empty bucket, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(b, &n)| (b, n))
            .collect()
    }
}

/// A fixed-size set holding one [`Histogram`] per [`Hist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSet {
    hists: [Histogram; Hist::ALL.len()],
}

impl Default for HistogramSet {
    fn default() -> HistogramSet {
        HistogramSet {
            hists: [Histogram::default(); Hist::ALL.len()],
        }
    }
}

impl HistogramSet {
    /// All histograms empty.
    pub fn new() -> HistogramSet {
        HistogramSet::default()
    }

    /// Records one observation into one histogram.
    #[inline]
    pub fn observe(&mut self, hist: Hist, value: u64) {
        self.hists[hist.index()].observe(value);
    }

    /// One histogram.
    pub fn get(&self, hist: Hist) -> &Histogram {
        &self.hists[hist.index()]
    }

    /// Element-wise sum of another set into this one.
    pub fn merge(&mut self, other: &HistogramSet) {
        for (a, b) in self.hists.iter_mut().zip(other.hists.iter()) {
            a.merge(b);
        }
    }

    /// Iterates `(label, histogram)` in [`Hist::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        Hist::ALL.iter().map(move |&h| (h.label(), self.get(h)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_assigns_every_variant_its_index() {
        // `index()` is an exhaustive match, so every Counter variant has
        // a declared slot — the compiler enforces that. These assertions
        // close the other half of the old drift hazard (ALL silently
        // lagging the enum at 18, then 21, then 23 variants): ALL must
        // hold every declared slot, in order, and COUNT must equal the
        // variant count the match covers.
        assert_eq!(Counter::ALL.len(), Counter::COUNT);
        for (i, c) in Counter::ALL.into_iter().enumerate() {
            assert_eq!(c.index(), i, "{c:?} is misplaced in Counter::ALL");
        }
        assert_eq!(Hist::ALL.len(), Hist::COUNT);
        for (i, h) in Hist::ALL.into_iter().enumerate() {
            assert_eq!(h.index(), i, "{h:?} is misplaced in Hist::ALL");
        }
    }

    #[test]
    fn counter_labels_are_unique_and_stable() {
        let mut labels: Vec<&str> = Counter::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Counter::ALL.len());
    }

    #[test]
    fn counter_set_adds_and_merges() {
        let mut a = CounterSet::new();
        assert!(a.is_zero());
        a.add(Counter::WsatFlips, 10);
        a.add(Counter::WsatFlips, 5);
        let mut b = CounterSet::new();
        b.add(Counter::WsatFlips, 1);
        b.add(Counter::PagesProcessed, 2);
        a.merge(&b);
        assert_eq!(a.get(Counter::WsatFlips), 16);
        assert_eq!(a.get(Counter::PagesProcessed), 2);
        assert!(!a.is_zero());
    }

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let mut a = CounterSet::new();
        a.add(Counter::EmIterations, u64::MAX);
        a.add(Counter::EmIterations, 1);
        assert_eq!(a.get(Counter::EmIterations), u64::MAX);
    }

    #[test]
    fn bucket_edges() {
        // The satellite's edge cases: 0 and u64::MAX.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(u64::MAX), NUM_BUCKETS - 1);
        // Power-of-two boundaries.
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1 << 63), 64);
        assert_eq!(bucket_of((1 << 63) - 1), 63);
    }

    #[test]
    fn bucket_uppers_bracket_their_values() {
        for b in 0..NUM_BUCKETS {
            let upper = bucket_upper(b);
            assert_eq!(bucket_of(upper), b, "upper bound of bucket {b}");
            if b + 1 < NUM_BUCKETS {
                assert_eq!(bucket_of(upper + 1), b + 1);
            }
        }
    }

    #[test]
    fn histogram_observes_extremes_without_overflow() {
        let mut h = Histogram::new();
        h.observe(0);
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 2 * u128::from(u64::MAX));
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(NUM_BUCKETS - 1), 2);
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (NUM_BUCKETS - 1, 2)]);
    }

    #[test]
    fn histogram_set_merges() {
        let mut a = HistogramSet::new();
        a.observe(Hist::ExtractsPerPage, 7);
        let mut b = HistogramSet::new();
        b.observe(Hist::ExtractsPerPage, 9);
        b.observe(Hist::EmIterationsPerSolve, 3);
        a.merge(&b);
        assert_eq!(a.get(Hist::ExtractsPerPage).count, 2);
        assert_eq!(a.get(Hist::ExtractsPerPage).sum, 16);
        assert_eq!(a.get(Hist::EmIterationsPerSolve).count, 1);
    }
}
