//! Typed counters and log2-bucket histograms.
//!
//! Every metric the pipeline can emit is a variant of a closed enum —
//! [`Counter`] for monotonic counts, [`Hist`] for value distributions —
//! so a metric set is a fixed-size array, merging is element-wise
//! addition, and the manifest's metric section has a stable, enumerable
//! shape at any thread count.

/// A monotonically increasing count of pipeline events.
///
/// Names follow the `area.event` scheme documented in `OBSERVABILITY.md`;
/// [`Counter::label`] is the canonical name used by every sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// List pages that entered the per-page front end.
    PagesProcessed,
    /// Pages whose outcome was clean (robust runs only).
    PagesOk,
    /// Pages processed with warnings (robust runs only).
    PagesDegraded,
    /// Pages that could not be processed (robust runs only).
    PagesFailed,
    /// Per-page warnings of any class (robust runs only).
    PageWarnings,
    /// Sites whose per-site front end (template induction) ran.
    SitesProcessed,
    /// Template inductions performed (once per site when the cache works).
    TemplateInductions,
    /// Per-page preparations served by a cached [`SiteTemplate`] instead
    /// of a fresh induction.
    ///
    /// [`SiteTemplate`]: https://docs.rs/tableseg
    TemplateCacheHits,
    /// Pages where the induced template was unusable and the whole page
    /// was used as the table slot (the paper's notes `a`/`b`).
    WholePageFallbacks,
    /// LCS folds performed by template induction (pages beyond the base
    /// page, summed over sites).
    TemplateMergeFolds,
    /// Candidate anchors dropped during induction: fold attrition plus
    /// the run-stability pass.
    TemplateAnchorsDropped,
    /// Histogram-LCS windows that fell back to quadratic Hirschberg
    /// (small or repeat-heavy windows; zero on clean templated sites).
    TemplateLcsFallbacks,
    /// Extracts kept in observation tables.
    ExtractsKept,
    /// Extracts dropped by the filtering rules.
    ExtractsSkipped,
    /// Total extract ↔ detail-page matches (the sum of |D_i| over all
    /// kept extracts — every kept extract has at least one).
    ExtractsMatched,
    /// WSAT(OIP) variable flips across all solves.
    WsatFlips,
    /// WSAT(OIP) restarts (tries) across all solves.
    WsatTries,
    /// CSP solves that had to relax their constraints (notes `c`/`d`).
    CspRelaxed,
    /// EM iterations across all probabilistic solves.
    EmIterations,
    /// Solver failures contained by the fallible path (robust runs only).
    SolveFailures,
    /// Faults injected by the chaos layer (chaos runs only).
    ChaosFaults,
    /// Pages scanned by the zero-copy front end (list + detail).
    FrontendPages,
    /// HTML bytes scanned by the zero-copy front end.
    FrontendBytes,
}

impl Counter {
    /// Every counter, in manifest order.
    pub const ALL: [Counter; 23] = [
        Counter::PagesProcessed,
        Counter::PagesOk,
        Counter::PagesDegraded,
        Counter::PagesFailed,
        Counter::PageWarnings,
        Counter::SitesProcessed,
        Counter::TemplateInductions,
        Counter::TemplateCacheHits,
        Counter::WholePageFallbacks,
        Counter::TemplateMergeFolds,
        Counter::TemplateAnchorsDropped,
        Counter::TemplateLcsFallbacks,
        Counter::ExtractsKept,
        Counter::ExtractsSkipped,
        Counter::ExtractsMatched,
        Counter::WsatFlips,
        Counter::WsatTries,
        Counter::CspRelaxed,
        Counter::EmIterations,
        Counter::SolveFailures,
        Counter::ChaosFaults,
        Counter::FrontendPages,
        Counter::FrontendBytes,
    ];

    /// The canonical `area.event` metric name.
    pub fn label(self) -> &'static str {
        match self {
            Counter::PagesProcessed => "pages.processed",
            Counter::PagesOk => "pages.ok",
            Counter::PagesDegraded => "pages.degraded",
            Counter::PagesFailed => "pages.failed",
            Counter::PageWarnings => "pages.warnings",
            Counter::SitesProcessed => "sites.processed",
            Counter::TemplateInductions => "template.inductions",
            Counter::TemplateCacheHits => "template.cache_hits",
            Counter::WholePageFallbacks => "template.whole_page_fallbacks",
            Counter::TemplateMergeFolds => "template.merge_folds",
            Counter::TemplateAnchorsDropped => "template.anchors_dropped",
            Counter::TemplateLcsFallbacks => "template.lcs_fallbacks",
            Counter::ExtractsKept => "extracts.kept",
            Counter::ExtractsSkipped => "extracts.skipped",
            Counter::ExtractsMatched => "extracts.matched",
            Counter::WsatFlips => "csp.wsat.flips",
            Counter::WsatTries => "csp.wsat.tries",
            Counter::CspRelaxed => "csp.relaxed",
            Counter::EmIterations => "prob.em.iterations",
            Counter::SolveFailures => "solve.failures",
            Counter::ChaosFaults => "chaos.faults",
            Counter::FrontendPages => "frontend.pages",
            Counter::FrontendBytes => "frontend.bytes",
        }
    }

    fn index(self) -> usize {
        Counter::ALL
            .iter()
            .position(|&c| c == self)
            .expect("every counter is in ALL")
    }
}

/// A fixed-size set holding one total per [`Counter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSet {
    totals: [u64; Counter::ALL.len()],
}

impl Default for CounterSet {
    fn default() -> CounterSet {
        CounterSet {
            totals: [0; Counter::ALL.len()],
        }
    }
}

impl CounterSet {
    /// All counters at zero.
    pub fn new() -> CounterSet {
        CounterSet::default()
    }

    /// Adds `by` to one counter (saturating — counters never wrap).
    #[inline]
    pub fn add(&mut self, counter: Counter, by: u64) {
        let slot = &mut self.totals[counter.index()];
        *slot = slot.saturating_add(by);
    }

    /// The total recorded for one counter.
    #[inline]
    pub fn get(&self, counter: Counter) -> u64 {
        self.totals[counter.index()]
    }

    /// Element-wise sum of another set into this one.
    pub fn merge(&mut self, other: &CounterSet) {
        for (a, b) in self.totals.iter_mut().zip(other.totals.iter()) {
            *a = a.saturating_add(*b);
        }
    }

    /// `true` if every counter is zero.
    pub fn is_zero(&self) -> bool {
        self.totals.iter().all(|&v| v == 0)
    }

    /// Iterates `(label, total)` in [`Counter::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        Counter::ALL.iter().map(|&c| (c.label(), self.get(c)))
    }
}

/// A value distribution tracked by the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Hist {
    /// Kept extracts per prepared page.
    ExtractsPerPage,
    /// Detail pages each kept extract was observed on (|D_i|).
    DetailPagesPerExtract,
    /// Ground-truth records per prepared page (`num_records`).
    RecordsPerPage,
    /// WSAT flips per CSP solve.
    WsatFlipsPerSolve,
    /// EM iterations per probabilistic solve.
    EmIterationsPerSolve,
    /// HTML bytes per page scanned by the zero-copy front end.
    FrontendPageBytes,
}

impl Hist {
    /// Every histogram, in manifest order.
    pub const ALL: [Hist; 6] = [
        Hist::ExtractsPerPage,
        Hist::DetailPagesPerExtract,
        Hist::RecordsPerPage,
        Hist::WsatFlipsPerSolve,
        Hist::EmIterationsPerSolve,
        Hist::FrontendPageBytes,
    ];

    /// The canonical metric name.
    pub fn label(self) -> &'static str {
        match self {
            Hist::ExtractsPerPage => "extracts_per_page",
            Hist::DetailPagesPerExtract => "detail_pages_per_extract",
            Hist::RecordsPerPage => "records_per_page",
            Hist::WsatFlipsPerSolve => "wsat_flips_per_solve",
            Hist::EmIterationsPerSolve => "em_iterations_per_solve",
            Hist::FrontendPageBytes => "frontend_page_bytes",
        }
    }

    fn index(self) -> usize {
        Hist::ALL
            .iter()
            .position(|&h| h == self)
            .expect("every histogram is in ALL")
    }
}

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `b ≥ 1`
/// holds values `v` with `v.ilog2() == b - 1`, i.e. `2^(b-1) ..= 2^b - 1`.
/// `u64::MAX` (ilog2 = 63) lands in the last bucket, 64.
pub const NUM_BUCKETS: usize = 65;

/// The log2 bucket index of a value.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        1 + value.ilog2() as usize
    }
}

/// The inclusive upper bound of a bucket (`u64::MAX` for the last).
pub fn bucket_upper(bucket: usize) -> u64 {
    match bucket {
        0 => 0,
        64 => u64::MAX,
        b => (1u64 << b) - 1,
    }
}

/// A log2-bucket histogram: counts per power-of-two value range, plus the
/// exact count and sum for mean computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values (`u128`: 2^64 observations of
    /// `u64::MAX` cannot overflow it).
    pub sum: u128,
    buckets: [u64; NUM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            buckets: [0; NUM_BUCKETS],
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum += u128::from(value);
        self.buckets[bucket_of(value)] += 1;
    }

    /// The count in one bucket.
    pub fn bucket(&self, bucket: usize) -> u64 {
        self.buckets[bucket]
    }

    /// Element-wise sum of another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// `(bucket, count)` for every non-empty bucket, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(b, &n)| (b, n))
            .collect()
    }
}

/// A fixed-size set holding one [`Histogram`] per [`Hist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSet {
    hists: [Histogram; Hist::ALL.len()],
}

impl Default for HistogramSet {
    fn default() -> HistogramSet {
        HistogramSet {
            hists: [Histogram::default(); Hist::ALL.len()],
        }
    }
}

impl HistogramSet {
    /// All histograms empty.
    pub fn new() -> HistogramSet {
        HistogramSet::default()
    }

    /// Records one observation into one histogram.
    #[inline]
    pub fn observe(&mut self, hist: Hist, value: u64) {
        self.hists[hist.index()].observe(value);
    }

    /// One histogram.
    pub fn get(&self, hist: Hist) -> &Histogram {
        &self.hists[hist.index()]
    }

    /// Element-wise sum of another set into this one.
    pub fn merge(&mut self, other: &HistogramSet) {
        for (a, b) in self.hists.iter_mut().zip(other.hists.iter()) {
            a.merge(b);
        }
    }

    /// Iterates `(label, histogram)` in [`Hist::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        Hist::ALL.iter().map(move |&h| (h.label(), self.get(h)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_labels_are_unique_and_stable() {
        let mut labels: Vec<&str> = Counter::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Counter::ALL.len());
    }

    #[test]
    fn counter_set_adds_and_merges() {
        let mut a = CounterSet::new();
        assert!(a.is_zero());
        a.add(Counter::WsatFlips, 10);
        a.add(Counter::WsatFlips, 5);
        let mut b = CounterSet::new();
        b.add(Counter::WsatFlips, 1);
        b.add(Counter::PagesProcessed, 2);
        a.merge(&b);
        assert_eq!(a.get(Counter::WsatFlips), 16);
        assert_eq!(a.get(Counter::PagesProcessed), 2);
        assert!(!a.is_zero());
    }

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let mut a = CounterSet::new();
        a.add(Counter::EmIterations, u64::MAX);
        a.add(Counter::EmIterations, 1);
        assert_eq!(a.get(Counter::EmIterations), u64::MAX);
    }

    #[test]
    fn bucket_edges() {
        // The satellite's edge cases: 0 and u64::MAX.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(u64::MAX), NUM_BUCKETS - 1);
        // Power-of-two boundaries.
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1 << 63), 64);
        assert_eq!(bucket_of((1 << 63) - 1), 63);
    }

    #[test]
    fn bucket_uppers_bracket_their_values() {
        for b in 0..NUM_BUCKETS {
            let upper = bucket_upper(b);
            assert_eq!(bucket_of(upper), b, "upper bound of bucket {b}");
            if b + 1 < NUM_BUCKETS {
                assert_eq!(bucket_of(upper + 1), b + 1);
            }
        }
    }

    #[test]
    fn histogram_observes_extremes_without_overflow() {
        let mut h = Histogram::new();
        h.observe(0);
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 2 * u128::from(u64::MAX));
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(NUM_BUCKETS - 1), 2);
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (NUM_BUCKETS - 1, 2)]);
    }

    #[test]
    fn histogram_set_merges() {
        let mut a = HistogramSet::new();
        a.observe(Hist::ExtractsPerPage, 7);
        let mut b = HistogramSet::new();
        b.observe(Hist::ExtractsPerPage, 9);
        b.observe(Hist::EmIterationsPerSolve, 3);
        a.merge(&b);
        assert_eq!(a.get(Hist::ExtractsPerPage).count, 2);
        assert_eq!(a.get(Hist::ExtractsPerPage).sum, 16);
        assert_eq!(a.get(Hist::EmIterationsPerSolve).count, 1);
    }
}
