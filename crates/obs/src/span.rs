//! Hierarchical spans: the `run > site > page > stage > substage` tree.
//!
//! A span is not a live RAII guard — the pipeline already measures every
//! stage with its deterministic [`StageTimes`] accumulators, so spans are
//! *assembled* from those measurements after the fact, in deterministic
//! (job) order. This keeps the tree byte-identical at any thread count:
//! the shape depends only on the corpus, and the only volatile data is
//! the per-span duration, which the manifest isolates (and can redact).
//!
//! [`StageTimes`]: https://docs.rs/tableseg

/// The level of a span in the run hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// The whole run (one per manifest).
    Run,
    /// One site of the corpus.
    Site,
    /// One list page of a site.
    Page,
    /// One pipeline stage (tokenize, template, extract, match, solve,
    /// decode).
    Stage,
    /// A sub-stage nested under a top-level stage: the solver methods and
    /// EM phases under `solve`, the histogram-LCS fold under `template`.
    SolverSubstage,
}

impl SpanKind {
    /// The kind's name as emitted in manifests.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Run => "run",
            SpanKind::Site => "site",
            SpanKind::Page => "page",
            SpanKind::Stage => "stage",
            SpanKind::SolverSubstage => "substage",
        }
    }
}

/// One node of the span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// The hierarchy level.
    pub kind: SpanKind,
    /// The span name (site name, page label, stage label, ...).
    pub name: String,
    /// Wall-clock nanoseconds attributed to this span. Volatile:
    /// redacted renderings zero it.
    pub nanos: u128,
    /// Child spans, in deterministic (corpus/stage) order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// A new leaf span.
    pub fn new(kind: SpanKind, name: impl Into<String>, nanos: u128) -> SpanNode {
        SpanNode {
            kind,
            name: name.into(),
            nanos,
            children: Vec::new(),
        }
    }

    /// Appends a child and returns `self` (builder style).
    pub fn with_child(mut self, child: SpanNode) -> SpanNode {
        self.children.push(child);
        self
    }

    /// Appends a child.
    pub fn push(&mut self, child: SpanNode) {
        self.children.push(child);
    }

    /// Total nanos attributed to every span named `name` at any depth.
    pub fn total_for(&self, name: &str) -> u128 {
        let own = if self.name == name { self.nanos } else { 0 };
        own + self
            .children
            .iter()
            .map(|c| c.total_for(name))
            .sum::<u128>()
    }

    /// Number of spans in the subtree (including `self`).
    pub fn len(&self) -> usize {
        1 + self.children.iter().map(SpanNode::len).sum::<usize>()
    }

    /// `true` if the subtree is a single node.
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    /// Preorder walk, calling `f(depth, node)` for every span.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(usize, &'a SpanNode)) {
        self.walk_at(0, f);
    }

    fn walk_at<'a>(&'a self, depth: usize, f: &mut impl FnMut(usize, &'a SpanNode)) {
        f(depth, self);
        for child in &self.children {
            child.walk_at(depth + 1, f);
        }
    }

    /// The human tree sink: an indented `--rt`-style listing of the span
    /// hierarchy with per-span durations.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        self.walk(&mut |depth, node| {
            let indent = "  ".repeat(depth);
            out.push_str(&format!(
                "{indent}{} {:<28} {}\n",
                node.kind.label(),
                node.name,
                crate::human_nanos(node.nanos),
            ));
        });
        out
    }

    /// A copy with every duration zeroed — the deterministic form used by
    /// the byte-identity goldens.
    pub fn redacted(&self) -> SpanNode {
        SpanNode {
            kind: self.kind,
            name: self.name.clone(),
            nanos: 0,
            children: self.children.iter().map(SpanNode::redacted).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> SpanNode {
        SpanNode::new(SpanKind::Run, "run", 100).with_child(
            SpanNode::new(SpanKind::Site, "site-a", 60)
                .with_child(
                    SpanNode::new(SpanKind::Stage, "solve", 40).with_child(SpanNode::new(
                        SpanKind::SolverSubstage,
                        "solve.csp",
                        30,
                    )),
                )
                .with_child(SpanNode::new(SpanKind::Stage, "decode", 5)),
        )
    }

    #[test]
    fn totals_and_len() {
        let t = tree();
        assert_eq!(t.len(), 5);
        assert_eq!(t.total_for("solve"), 40);
        assert_eq!(t.total_for("solve.csp"), 30);
        assert_eq!(t.total_for("missing"), 0);
    }

    #[test]
    fn walk_is_preorder() {
        let t = tree();
        let mut names = Vec::new();
        t.walk(&mut |depth, n| names.push((depth, n.name.clone())));
        assert_eq!(
            names,
            vec![
                (0, "run".to_string()),
                (1, "site-a".to_string()),
                (2, "solve".to_string()),
                (3, "solve.csp".to_string()),
                (2, "decode".to_string()),
            ]
        );
    }

    #[test]
    fn redaction_zeroes_every_duration_but_keeps_shape() {
        let r = tree().redacted();
        assert_eq!(r.len(), 5);
        let mut all_zero = true;
        r.walk(&mut |_, n| all_zero &= n.nanos == 0);
        assert!(all_zero);
        assert_eq!(r.redacted(), r);
    }

    #[test]
    fn tree_render_mentions_every_span() {
        let rendered = tree().render_tree();
        for name in ["run", "site-a", "solve", "solve.csp", "decode"] {
            assert!(rendered.contains(name), "{rendered}");
        }
    }
}
