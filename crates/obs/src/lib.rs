//! Structured observability for the tableseg pipeline.
//!
//! The paper ("Using the Structure of Web Sites for Automatic
//! Segmentation of Tables", Section 6) evaluates the system per site and
//! per stage; this crate turns those ad-hoc measurements into one
//! instrumentation API used by every layer of the reproduction:
//!
//! * [`metric`] — typed [`Counter`]s and log2-bucket [`Histogram`]s for
//!   the quantities the paper (and the chaos layer) care about: pages
//!   processed, extracts matched, WSAT flips and restarts, EM
//!   iterations, template-cache hits, warnings and failures.
//! * [`recorder`] — the per-job [`Recorder`] the batch engine merges in
//!   deterministic job order, plus the ambient enable switch
//!   ([`set_enabled`]) that makes everything a no-op by default.
//! * [`span`] — the `run > site > page > stage > substage` [`SpanNode`]
//!   tree, assembled from the pipeline's existing per-stage timers.
//! * [`manifest`] — the per-run [`Manifest`] with its three sinks:
//!   summary JSON, JSON-lines event log and Prometheus text.
//!
//! Determinism is the design constraint throughout: metric totals come
//! from per-job recorders merged in job order, span trees are assembled
//! in corpus order, and every wall-clock or build-specific value lives
//! in an explicitly volatile section that redacted renderings omit — so
//! a redacted manifest is byte-identical at 1, 2 or N worker threads.
//! See `OBSERVABILITY.md` at the repository root for the naming scheme
//! and schema reference.
//!
//! # Example
//!
//! ```
//! use tableseg_obs::{Counter, Hist, Manifest, Recorder, SpanKind, SpanNode};
//!
//! // Per-job recorders, merged in deterministic job order.
//! let mut job = Recorder::always_on();
//! job.incr(Counter::PagesProcessed);
//! job.observe(Hist::ExtractsPerPage, 12);
//! let mut run = Recorder::default();
//! run.merge(&job);
//!
//! // A manifest bundles metrics, config and the span tree.
//! let mut m = Manifest::new("example").with_config("threads", 1);
//! m.metrics = run;
//! m.root = SpanNode::new(SpanKind::Run, "example", 0)
//!     .with_child(SpanNode::new(SpanKind::Stage, "solve", 0));
//! assert!(m.render_json(true).contains("\"pages.processed\": 1"));
//! assert!(m.render_prometheus(false).contains("tableseg_pages_processed_total 1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod manifest;
pub mod metric;
pub mod recorder;
pub mod span;

pub use manifest::{
    deterministic_requested, git_describe, json_str, Manifest, RobustnessRollup, Volatile,
    DETERMINISTIC_ENV, SCHEMA,
};
pub use metric::{
    bucket_of, bucket_upper, Counter, CounterSet, Hist, Histogram, HistogramSet, NUM_BUCKETS,
};
pub use recorder::{enabled, set_enabled, Recorder};
pub use span::{SpanKind, SpanNode};

/// Formats a nanosecond count for humans (`532ns`, `1.24ms`, `3.50s`),
/// matching the style of the core timing registry.
pub fn human_nanos(nanos: u128) -> String {
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.2}us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2}s", nanos as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_nanos_units() {
        assert_eq!(human_nanos(532), "532ns");
        assert_eq!(human_nanos(1_240), "1.24us");
        assert_eq!(human_nanos(1_240_000), "1.24ms");
        assert_eq!(human_nanos(3_500_000_000), "3.50s");
    }
}
